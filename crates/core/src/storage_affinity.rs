//! Task-centric **storage affinity** baseline (Santos-Neto et al. [14]).
//!
//! As described in §3.1 of the paper:
//!
//! > "With task replication, the scheduler first distributes its tasks
//! > according to the overlap cardinality. Once the initial assigning is
//! > done, it waits until at least one worker becomes idle. Then the
//! > scheduler picks a task already assigned to a worker and replicates it
//! > to the idle worker. If one of the workers finishes the task, the other
//! > cancels the task. The process is repeated whenever there is an idle
//! > worker."
//!
//! Concretely:
//!
//! * **Initial assignment** (task-centric, up-front): tasks are visited in
//!   id order; each goes to the site with the largest *predicted* overlap —
//!   the site's storage contents as the scheduler expects them to be, i.e.
//!   current contents plus the inputs of tasks already queued there,
//!   FIFO-truncated at the storage capacity. This prediction is exactly the
//!   **premature scheduling decision** of §3.1: by execution time the real
//!   storage may long have evicted those files. Per-site assignment budgets
//!   keep queue *lengths* balanced (ties go to the least-loaded site), but
//!   queue *durations* stay unbalanced because worker speeds differ — the
//!   residual imbalance that task replication then mitigates.
//! * **Execution**: each worker drains its own queue (skipping tasks a
//!   replica already finished).
//! * **Replication**: an idle worker with an empty queue receives a replica
//!   of a *task already assigned to another worker* — queued or running —
//!   choosing the one with the largest overlap against the idle worker's
//!   **actual** current site storage; the first completion cancels the
//!   other copies (the owner simply skips a queued task a replica already
//!   finished). Replication is what mitigates both the unbalanced
//!   assignment and the premature decisions, exactly as §3.1 describes.
//!
//! The assignment phase costs `O(T·I·S)` — the complexity the paper quotes
//! for task-centric strategies in §4.4.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use gridsched_storage::{FileMask, FileSet, SiteStore};
use gridsched_telemetry::{Counter, Telemetry};
use gridsched_workload::{FileId, TaskId, Workload};

use crate::control::ControlDirective;
use crate::ids::{GridEnv, SiteId, WorkerId};
use crate::index::{enable_ranks, FileIndex, PendingLog, RankStats, SiteView};
use crate::pool::TaskPool;
use crate::scheduler::{Assignment, CompletionOutcome, EvalMode, ReplicaThrottle, Scheduler};
use crate::weight::WeightMetric;

/// FIFO-truncated prediction of a site's future storage contents.
///
/// Residency is a dense [`FileSet`] bitset, so the assignment phase's
/// per-(task, site) overlap probe is AND+popcount against the task's
/// pre-lowered [`FileMask`] instead of `|t|` hash probes.
#[derive(Debug, Clone)]
struct VirtualStore {
    capacity: usize,
    resident: FileSet,
    order: VecDeque<FileId>,
}

impl VirtualStore {
    fn new(capacity: usize) -> Self {
        VirtualStore {
            capacity,
            resident: FileSet::new(),
            order: VecDeque::new(),
        }
    }

    fn overlap(&self, mask: &FileMask) -> usize {
        mask.overlap(&self.resident)
    }

    fn admit(&mut self, files: &[FileId]) {
        for &f in files {
            if self.resident.insert(f) {
                self.order.push_back(f);
                while self.order.len() > self.capacity {
                    let victim = self.order.pop_front().expect("non-empty");
                    self.resident.remove(victim);
                }
            }
        }
    }
}

/// Task-centric storage-affinity scheduler with task replication.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use gridsched_core::{Scheduler, StorageAffinity};
/// use gridsched_workload::coadd::CoaddConfig;
///
/// let wl = Arc::new(CoaddConfig::small(0).generate());
/// let sched = StorageAffinity::new(wl);
/// assert_eq!(sched.name(), "storage-affinity");
/// ```
pub struct StorageAffinity {
    workload: Arc<Workload>,
    /// Budget slack: a site may receive up to `slack × T/S` tasks. The
    /// original heuristic has no balance constraint at all (unbalanced
    /// assignment is its documented weakness); the cap only prevents the
    /// fully-degenerate everything-on-one-site outcome of a cold start.
    budget_slack: f64,
    workers_per_site: usize,
    /// Per-worker (flat index) task queues, fixed at initialization.
    queues: Vec<VecDeque<TaskId>>,
    /// Tasks whose execution completed (possibly via a replica).
    done: Vec<bool>,
    /// Tasks not yet completed anywhere (replication candidates).
    pending: TaskPool,
    /// task → workers currently executing it (primary first).
    running: HashMap<TaskId, Vec<WorkerId>>,
    /// Inverted index + per-site overlap caches (and, in incremental
    /// mode, overlap-ordered priority indexes) for replica selection
    /// against *actual* storage contents.
    index: Arc<FileIndex>,
    views: Vec<SiteView>,
    mode: EvalMode,
    completed: usize,
    initialized: bool,
    /// Replica fan-out bounds; [`ReplicaThrottle::none`] reproduces the
    /// unthrottled paper behaviour byte for byte (the bookkeeping below is
    /// only maintained while a bound is active).
    throttle: ReplicaThrottle,
    /// Active replica executions: worker → the task it replicates.
    replica_at: HashMap<WorkerId, TaskId>,
    /// Concurrent replica executions per task. A task at the cap simply
    /// stops satisfying the ranked walk's `live` predicate — its index
    /// entries go stale in place and are repaired lazily on encounter,
    /// `O(1)` at saturation time instead of an `O(S log T)` withdrawal
    /// broadcast.
    task_replicas: Vec<u32>,
    /// Concurrent replica executions launched by each site's workers.
    site_inflight: Vec<u32>,
    /// Become-live journal: cap releases of still-pending tasks append
    /// here; each site's rank re-admits them on its next read.
    log: PendingLog,
    /// Hot-path instruments for the ranked replica walks (inert unless
    /// telemetry is attached).
    stats: RankStats,
    /// `throttle.admits` — replica executions launched.
    admits: Counter,
    /// `throttle.parks` — idle workers parked by a saturated site budget.
    parks: Counter,
    /// `throttle.releases` — replica slots released (won, cancelled, or
    /// fault-killed executions).
    releases: Counter,
}

impl StorageAffinity {
    /// Creates the scheduler; assignment happens at
    /// [`Scheduler::initialize`].
    #[must_use]
    pub fn new(workload: Arc<Workload>) -> Self {
        let tasks = workload.task_count();
        let index = Arc::new(FileIndex::build(&workload));
        StorageAffinity {
            workload,
            budget_slack: 2.0,
            workers_per_site: 0,
            queues: Vec::new(),
            done: vec![false; tasks],
            pending: TaskPool::full(tasks),
            running: HashMap::new(),
            index,
            views: Vec::new(),
            mode: EvalMode::default(),
            completed: 0,
            initialized: false,
            throttle: ReplicaThrottle::none(),
            replica_at: HashMap::new(),
            task_replicas: vec![0; tasks],
            site_inflight: Vec::new(),
            log: PendingLog::new(),
            stats: RankStats::default(),
            admits: Counter::disabled(),
            parks: Counter::disabled(),
            releases: Counter::disabled(),
        }
    }

    /// Switches the replica-selection path (see [`EvalMode`]): `Naive`
    /// probes the idle worker's store directly (`O(T·I)`), `Indexed` scans
    /// the cached per-site counters (`O(T)`), `Incremental` (default)
    /// reads the overlap-ordered priority index (`O(log T)`). Call before
    /// [`Scheduler::initialize`].
    #[must_use]
    pub fn with_eval_mode(mut self, mode: EvalMode) -> Self {
        self.mode = mode;
        self
    }

    /// Bounds speculative replica fan-out (see [`ReplicaThrottle`]). The
    /// default — no bounds — is byte-identical to the paper's unthrottled
    /// behaviour. Call before [`Scheduler::initialize`].
    #[must_use]
    pub fn with_throttle(mut self, throttle: ReplicaThrottle) -> Self {
        self.throttle = throttle;
        self
    }

    /// Overrides the assignment budget slack (see the field docs).
    ///
    /// # Panics
    ///
    /// Panics if `slack < 1.0` (a slack below 1 cannot fit all tasks).
    #[must_use]
    pub fn with_budget_slack(mut self, slack: f64) -> Self {
        assert!(slack >= 1.0, "budget slack must be >= 1.0");
        self.budget_slack = slack;
        self
    }

    /// The queue assigned to `worker` (test/diagnostic accessor).
    #[must_use]
    pub fn queue_of(&self, worker: WorkerId) -> &VecDeque<TaskId> {
        &self.queues[worker.flat_index(self.workers_per_site)]
    }

    fn pop_own_queue(&mut self, worker: WorkerId) -> Option<TaskId> {
        let q = &mut self.queues[worker.flat_index(self.workers_per_site)];
        while let Some(t) = q.pop_front() {
            if !self.done[t.index()] {
                return Some(t);
            }
        }
        None
    }

    /// Whether `task` already runs its full complement of replicas.
    fn capped(&self, task: TaskId) -> bool {
        self.throttle
            .replica_cap
            .is_some_and(|cap| self.task_replicas[task.index()] >= cap)
    }

    /// Picks the unfinished task (queued or running, assigned to some other
    /// worker) with the largest overlap against the idle worker's current
    /// site storage. Tasks at their replica cap are skipped — in
    /// incremental mode their stale index entries are repaired on
    /// encounter.
    fn pick_replica(&mut self, worker: WorkerId, store: &SiteStore) -> Option<TaskId> {
        match self.mode {
            // O(log T): walk the overlap-ordered index until a task not
            // already executing at this very worker appears. Completed or
            // cap-saturated tasks fail the `live` predicate (and are
            // physically repaired); "already running here" is transient,
            // so it is only a `keep` filter.
            EvalMode::Incremental => {
                let pending = &self.pending;
                let cap = self.throttle.replica_cap;
                let task_replicas = &self.task_replicas;
                let running = &self.running;
                let live = |t: TaskId| {
                    pending.contains(t) && cap.is_none_or(|c| task_replicas[t.index()] < c)
                };
                let view = &mut self.views[worker.site.index()];
                view.sync_pending(&self.index, &self.log, live);
                view.top_overlap_where(live, |t| {
                    !running
                        .get(&t)
                        .is_some_and(|workers| workers.contains(&worker))
                })
            }
            // O(T): scan the cached per-site counters.
            EvalMode::Indexed => {
                let excluded = |t: &TaskId| {
                    self.capped(*t)
                        || self
                            .running
                            .get(t)
                            .is_some_and(|workers| workers.contains(&worker))
                };
                let view = &self.views[worker.site.index()];
                self.pending
                    .iter()
                    .filter(|t| !excluded(t))
                    .map(|t| (view.overlap(t), std::cmp::Reverse(t)))
                    .max()
                    .map(|(_, std::cmp::Reverse(t))| t)
            }
            // O(T·I): probe the store directly, the paper's task-centric
            // per-decision cost.
            EvalMode::Naive => {
                let excluded = |t: &TaskId| {
                    self.capped(*t)
                        || self
                            .running
                            .get(t)
                            .is_some_and(|workers| workers.contains(&worker))
                };
                self.pending
                    .iter()
                    .filter(|t| !excluded(t))
                    .map(|t| {
                        let files = self.workload.task(t).files();
                        (store.overlap(files) as u32, std::cmp::Reverse(t))
                    })
                    .max()
                    .map(|(_, std::cmp::Reverse(t))| t)
            }
        }
    }

    /// Marks a task completed: out of the pending pool in `O(1)` — its
    /// rank entries go stale in place and are repaired lazily on read.
    fn pool_remove(&mut self, task: TaskId) {
        self.pending.remove(task);
    }

    /// Throttle bookkeeping for a replica execution starting at `worker`.
    /// Saturating a task's cap flips its `live` predicate — `O(1)`, no
    /// index is touched.
    fn note_replica_started(&mut self, worker: WorkerId, task: TaskId) {
        if !self.throttle.is_active() {
            return;
        }
        self.admits.incr();
        self.replica_at.insert(worker, task);
        self.site_inflight[worker.site.index()] += 1;
        self.task_replicas[task.index()] += 1;
    }

    /// Throttle bookkeeping for an execution ending at `worker` (won,
    /// cancelled, or fault-killed). A no-op for primary executions. A task
    /// dropping back below its cap while still pending becomes live again:
    /// one journal append, replayed by each site's rank on its next read.
    fn note_execution_ended(&mut self, worker: WorkerId) {
        if !self.throttle.is_active() {
            return;
        }
        let Some(task) = self.replica_at.remove(&worker) else {
            return;
        };
        self.releases.incr();
        self.site_inflight[worker.site.index()] -= 1;
        let n = &mut self.task_replicas[task.index()];
        *n -= 1;
        if Some(*n + 1) == self.throttle.replica_cap
            && self.pending.contains(task)
            && self.mode == EvalMode::Incremental
        {
            self.log.record(task, &mut self.views);
        }
    }
}

impl Scheduler for StorageAffinity {
    fn name(&self) -> String {
        "storage-affinity".to_string()
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.stats = RankStats::attach(telemetry);
        self.admits = telemetry.counter("throttle.admits");
        self.parks = telemetry.counter("throttle.parks");
        self.releases = telemetry.counter("throttle.releases");
    }

    fn on_control(&mut self, directive: &ControlDirective) {
        match directive {
            ControlDirective::SetReplicaCap(cap) => {
                // The adaptive throttle only runs on throttled schedulers
                // (the engine seeds a starting cap), so the replica
                // bookkeeping below is always live when a move arrives.
                if !self.throttle.is_active() {
                    return;
                }
                let old = self.throttle.replica_cap;
                if old == Some(*cap) {
                    return;
                }
                self.throttle.replica_cap = Some(*cap);
                // Lowering is free: saturated tasks simply stop satisfying
                // the `live` predicate and their rank entries are repaired
                // lazily. Raising must re-admit tasks that were saturated
                // under the old cap — their entries were already repaired
                // *out* of the ranks, so journal them back in.
                if self.mode == EvalMode::Incremental && old.is_some_and(|o| *cap > o) {
                    let o = old.expect("checked above");
                    let revived: Vec<TaskId> = self
                        .pending
                        .iter()
                        .filter(|t| {
                            let n = self.task_replicas[t.index()];
                            n >= o && n < *cap
                        })
                        .collect();
                    for t in revived {
                        self.log.record(t, &mut self.views);
                    }
                }
            }
            ControlDirective::SiteScores(_) => {
                // Per-site placement scores cannot change a *per-site*
                // task argmax (a positive multiplier on one site's weights
                // is scale-invariant within that site); the engine applies
                // them where a cross-site choice exists (dispatch gating,
                // replication push targeting).
            }
        }
    }

    fn initialize(&mut self, env: &GridEnv, stores: &[SiteStore]) {
        assert_eq!(env.sites, stores.len(), "one store per site");
        self.workers_per_site = env.workers_per_site;
        self.queues = vec![VecDeque::new(); env.total_workers()];
        self.site_inflight = vec![0; env.sites];
        self.views = (0..env.sites)
            .map(|_| {
                let mut v = SiteView::new(self.workload.task_count());
                v.set_stats(self.stats.clone());
                v
            })
            .collect();
        for (site, store) in stores.iter().enumerate() {
            for f in store.resident() {
                self.views[site].on_file_added(&self.index, f, store.ref_count(f));
            }
        }
        if self.mode == EvalMode::Incremental {
            enable_ranks(
                &mut self.views,
                WeightMetric::Overlap,
                &self.index,
                &self.pending,
            );
        }

        // Predicted storage per site, seeded from actual contents.
        let mut virtuals: Vec<VirtualStore> = stores
            .iter()
            .map(|s| {
                let mut v = VirtualStore::new(env.capacity_files);
                let mut resident: Vec<FileId> = s.resident().collect();
                resident.sort_unstable();
                v.admit(&resident);
                v
            })
            .collect();

        let total = self.workload.task_count();
        let budget = ((total as f64 / env.sites as f64) * self.budget_slack).ceil() as usize;
        let mut assigned = vec![0usize; env.sites];
        // Pre-lowered input sets: one AND+popcount per (task, site) probe.
        let masks: Vec<FileMask> = self
            .workload
            .tasks()
            .iter()
            .map(|t| FileMask::new(t.files()))
            .collect();

        for task in self.workload.tasks() {
            // Site with max predicted overlap among sites with budget left;
            // ties → least loaded, then lowest id.
            let mut best: Option<(usize, usize, usize)> = None; // (overlap, -load via cmp, site)
            for site in 0..env.sites {
                if assigned[site] >= budget {
                    continue;
                }
                let ov = virtuals[site].overlap(&masks[task.id.index()]);
                let better = match best {
                    None => true,
                    Some((bov, bload, _)) => ov > bov || (ov == bov && assigned[site] < bload),
                };
                if better {
                    best = Some((ov, assigned[site], site));
                }
            }
            let (_, _, site) = best.expect("budget covers all tasks: sites*budget >= total");
            // Round-robin among the site's workers.
            let worker_idx = assigned[site] % env.workers_per_site;
            let flat = site * env.workers_per_site + worker_idx;
            self.queues[flat].push_back(task.id);
            assigned[site] += 1;
            virtuals[site].admit(task.files());
        }
        self.initialized = true;
    }

    fn on_worker_idle(&mut self, worker: WorkerId, store: &SiteStore) -> Assignment {
        assert!(self.initialized, "initialize() must run first");
        if let Some(t) = self.pop_own_queue(worker) {
            self.running.entry(t).or_default().push(worker);
            return Assignment::Run(t);
        }
        if self.completed == self.workload.task_count() {
            return Assignment::Finished;
        }
        // Site budget: a saturated site parks its idle workers until one of
        // its in-flight replicas resolves (O(1), before any pick).
        if let Some(budget) = self.throttle.site_budget {
            if self.site_inflight[worker.site.index()] >= budget {
                self.parks.incr();
                return Assignment::Wait;
            }
        }
        match self.pick_replica(worker, store) {
            Some(t) => {
                self.running.entry(t).or_default().push(worker);
                self.note_replica_started(worker, t);
                Assignment::Replicate(t)
            }
            // Every unfinished task is saturated or already executing at
            // this very worker — try again after the next event.
            None => Assignment::Wait,
        }
    }

    fn on_task_complete(&mut self, worker: WorkerId, task: TaskId) -> CompletionOutcome {
        if self.done[task.index()] {
            // A replica finished after the first copy; nothing to do (the
            // engine should have cancelled it, but be tolerant) — beyond
            // releasing the execution's throttle slots.
            self.note_execution_ended(worker);
            return CompletionOutcome::default();
        }
        self.done[task.index()] = true;
        self.pool_remove(task);
        self.completed += 1;
        // The winning execution may itself be a replica. Its slots are
        // released only now, after the pool removal, so a cap-saturated
        // winner is not pointlessly journaled as become-live (the task is
        // done — sites would re-admit it just to repair the entry on
        // their next read).
        self.note_execution_ended(worker);
        let mut others = self.running.remove(&task).unwrap_or_default();
        others.retain(|w| *w != worker);
        CompletionOutcome {
            cancel_replicas: others,
        }
    }

    fn on_replica_aborted(&mut self, worker: WorkerId, task: TaskId) {
        self.note_execution_ended(worker);
        if let Some(workers) = self.running.get_mut(&task) {
            workers.retain(|w| *w != worker);
        }
    }

    fn on_worker_lost(&mut self, worker: WorkerId, in_flight: Option<TaskId>) -> bool {
        self.note_execution_ended(worker);
        // The crashed worker's queued tasks stay in its queue: it drains
        // them after recovery, and in the meantime they remain valid
        // replication targets for idle workers (they are still `pending`).
        // Only the in-flight execution needs bookkeeping.
        let Some(task) = in_flight else {
            return false;
        };
        if let Some(workers) = self.running.get_mut(&task) {
            workers.retain(|w| *w != worker);
            if workers.is_empty() {
                self.running.remove(&task);
            }
        }
        // Orphaned iff no other replica is running and nobody finished it;
        // it stays in `pending`, so replication will pick it back up.
        !self.done[task.index()] && !self.running.contains_key(&task)
    }

    fn on_file_added(&mut self, site: SiteId, file: FileId, ref_count: u32) {
        if let Some(view) = self.views.get_mut(site.index()) {
            let pending = &self.pending;
            let cap = self.throttle.replica_cap;
            let task_replicas = &self.task_replicas;
            view.on_file_added_pruning(&self.index, file, ref_count, |t| {
                pending.contains(t) && cap.is_none_or(|c| task_replicas[t.index()] < c)
            });
        }
    }

    fn on_file_evicted(&mut self, site: SiteId, file: FileId, ref_count: u32) {
        if let Some(view) = self.views.get_mut(site.index()) {
            let pending = &self.pending;
            let cap = self.throttle.replica_cap;
            let task_replicas = &self.task_replicas;
            view.on_file_evicted_pruning(&self.index, file, ref_count, |t| {
                pending.contains(t) && cap.is_none_or(|c| task_replicas[t.index()] < c)
            });
        }
    }

    fn on_task_reference(&mut self, site: SiteId, file: FileId) {
        if let Some(view) = self.views.get_mut(site.index()) {
            let pending = &self.pending;
            let cap = self.throttle.replica_cap;
            let task_replicas = &self.task_replicas;
            view.on_task_reference_pruning(&self.index, file, |t| {
                pending.contains(t) && cap.is_none_or(|c| task_replicas[t.index()] < c)
            });
        }
    }

    fn unfinished(&self) -> usize {
        self.workload.task_count() - self.completed
    }
}

impl std::fmt::Debug for StorageAffinity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageAffinity")
            .field("completed", &self.completed)
            .field("running", &self.running.len())
            .field("initialized", &self.initialized)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SiteId;
    use gridsched_storage::EvictionPolicy;
    use gridsched_workload::coadd::CoaddConfig;

    fn setup(sites: usize, wps: usize) -> (StorageAffinity, Vec<SiteStore>, GridEnv) {
        // Unshuffled so id-adjacent tasks are spatial neighbours (the
        // clustering assertion below relies on it); slack 1.0 so every
        // site is guaranteed a share of the queue in these tiny setups.
        let mut cfg = CoaddConfig::small(0);
        cfg.shuffle_tasks = false;
        let wl = Arc::new(cfg.generate());
        let env = GridEnv {
            sites,
            workers_per_site: wps,
            capacity_files: 500,
        };
        let stores: Vec<SiteStore> = (0..sites)
            .map(|_| SiteStore::new(500, EvictionPolicy::Lru))
            .collect();
        let mut sched = StorageAffinity::new(wl).with_budget_slack(1.0);
        sched.initialize(&env, &stores);
        (sched, stores, env)
    }

    #[test]
    fn initial_assignment_is_balanced() {
        let (sched, _, env) = setup(4, 2);
        let total: usize = env.workers().map(|w| sched.queue_of(w).len()).sum();
        assert_eq!(total, 200, "every task queued exactly once");
        // Slack 1.0 → at most ⌈T/S⌉ tasks per site, split over the site's
        // workers.
        for w in env.workers() {
            let len = sched.queue_of(w).len();
            assert!(len <= 200 / 4 / 2 + 1, "queue at {w} too long: {len}");
        }
    }

    #[test]
    fn assignment_clusters_adjacent_tasks() {
        // Coadd neighbours share files; the virtual-storage prediction
        // should keep runs of adjacent tasks on the same site.
        let (sched, _, env) = setup(4, 1);
        let mut site_of = vec![usize::MAX; 200];
        for w in env.workers() {
            for &t in sched.queue_of(w) {
                site_of[t.index()] = w.site.index();
            }
        }
        let switches = site_of.windows(2).filter(|p| p[0] != p[1]).count();
        assert!(
            switches <= 12,
            "expected long same-site runs, got {switches} switches"
        );
    }

    #[test]
    fn workers_drain_own_queue_then_replicate() {
        let (mut sched, stores, _env) = setup(2, 1);
        let w0 = WorkerId::new(SiteId(0), 0);
        let w1 = WorkerId::new(SiteId(1), 0);
        // Exhaust w0's queue, completing each task.
        let own_queue: Vec<TaskId> = sched.queue_of(w0).iter().copied().collect();
        loop {
            match sched.on_worker_idle(w0, &stores[0]) {
                Assignment::Run(t) => {
                    assert!(own_queue.contains(&t), "w0 runs only its own queue");
                    sched.on_task_complete(w0, t);
                }
                // Once its queue drains, w0 replicates a task assigned to
                // w1 (queued tasks are valid replication targets).
                Assignment::Replicate(t) => {
                    assert!(!own_queue.contains(&t));
                    assert!(sched.queue_of(w1).contains(&t));
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // w1, idle with a non-empty queue, still runs its own queue first.
        match sched.on_worker_idle(w1, &stores[1]) {
            Assignment::Run(_) => {}
            other => panic!("w1 should run its own queue first: {other:?}"),
        }
    }

    #[test]
    fn replica_completion_cancels_peers() {
        let (mut sched, stores, _env) = setup(2, 1);
        let w0 = WorkerId::new(SiteId(0), 0);
        let w1 = WorkerId::new(SiteId(1), 0);
        let t0 = match sched.on_worker_idle(w0, &stores[0]) {
            Assignment::Run(t) => t,
            other => panic!("unexpected {other:?}"),
        };
        // Drain w1's queue completely so it replicates.
        let mut last = None;
        let replicated = loop {
            match sched.on_worker_idle(w1, &stores[1]) {
                Assignment::Run(t) => {
                    if let Some(prev) = last {
                        sched.on_task_complete(w1, prev);
                    }
                    last = Some(t);
                }
                Assignment::Replicate(t) => break t,
                other => panic!("unexpected {other:?}"),
            }
        };
        if let Some(prev) = last {
            sched.on_task_complete(w1, prev);
        }
        assert_eq!(replicated, t0, "only t0 is running");
        // w0 finishes first → cancel the replica at w1.
        let outcome = sched.on_task_complete(w0, t0);
        assert_eq!(outcome.cancel_replicas, vec![w1]);
        sched.on_replica_aborted(w1, t0);
        // Completing the same task again is tolerated and a no-op.
        let again = sched.on_task_complete(w1, t0);
        assert!(again.cancel_replicas.is_empty());
    }

    #[test]
    fn replica_pick_modes_agree() {
        // Drive one instance per eval mode through the same storage churn
        // + idle/complete interleaving; every assignment must match.
        let mk = |mode| {
            let mut cfg = CoaddConfig::small(0);
            cfg.shuffle_tasks = false;
            let wl = Arc::new(cfg.generate());
            StorageAffinity::new(wl)
                .with_budget_slack(1.0)
                .with_eval_mode(mode)
        };
        let env = GridEnv {
            sites: 2,
            workers_per_site: 1,
            capacity_files: 40,
        };
        let mut stores: Vec<SiteStore> = (0..2)
            .map(|_| SiteStore::new(40, EvictionPolicy::Lru))
            .collect();
        let mut scheds: Vec<StorageAffinity> =
            [EvalMode::Incremental, EvalMode::Indexed, EvalMode::Naive]
                .into_iter()
                .map(mk)
                .collect();
        for s in &mut scheds {
            s.initialize(&env, &stores);
        }
        let w0 = WorkerId::new(SiteId(0), 0);
        let w1 = WorkerId::new(SiteId(1), 0);
        // Drain w0's queue (completing), churning site-0 storage along the
        // way, until it starts replicating; every decision must agree.
        let mut file = 0u32;
        for step in 0..300 {
            let f = FileId(file % 60);
            file += 7;
            if !stores[0].contains(f) {
                let evicted = stores[0].insert(f);
                for e in evicted {
                    let rc = stores[0].ref_count(e);
                    for s in &mut scheds {
                        s.on_file_evicted(SiteId(0), e, rc);
                    }
                }
                let rc = stores[0].ref_count(f);
                for s in &mut scheds {
                    s.on_file_added(SiteId(0), f, rc);
                }
            }
            let picks: Vec<Assignment> = scheds
                .iter_mut()
                .map(|s| s.on_worker_idle(w0, &stores[0]))
                .collect();
            assert_eq!(picks[0], picks[1], "step {step}");
            assert_eq!(picks[0], picks[2], "step {step}");
            match picks[0] {
                Assignment::Run(t) => {
                    for s in &mut scheds {
                        s.on_task_complete(w0, t);
                    }
                }
                Assignment::Replicate(t) => {
                    // Let the replica "finish" at w0, cancelling nothing at
                    // w1 (it is not running anything), then continue.
                    for s in &mut scheds {
                        let out = s.on_task_complete(w0, t);
                        assert!(out.cancel_replicas.is_empty());
                    }
                }
                Assignment::Wait | Assignment::Finished => break,
            }
        }
        // w1 must agree too (its queue was never touched).
        let picks: Vec<Assignment> = scheds
            .iter_mut()
            .map(|s| s.on_worker_idle(w1, &stores[1]))
            .collect();
        assert_eq!(picks[0], picks[1]);
        assert_eq!(picks[0], picks[2]);
    }

    /// Completes every task except `keep` (as if other workers had run
    /// them), so the next idle polls can only replicate the kept tasks.
    fn complete_all_except(sched: &mut StorageAffinity, reporter: WorkerId, keep: &[TaskId]) {
        let total = sched.workload.task_count() as u32;
        for t in (0..total).map(TaskId) {
            if !keep.contains(&t) {
                sched.on_task_complete(reporter, t);
            }
        }
    }

    #[test]
    fn replica_cap_limits_concurrent_copies() {
        let mut cfg = CoaddConfig::small(0);
        cfg.shuffle_tasks = false;
        let wl = Arc::new(cfg.generate());
        let env = GridEnv {
            sites: 3,
            workers_per_site: 1,
            capacity_files: 500,
        };
        let stores: Vec<SiteStore> = (0..3)
            .map(|_| SiteStore::new(500, EvictionPolicy::Lru))
            .collect();
        let mut sched = StorageAffinity::new(wl)
            .with_budget_slack(1.0)
            .with_throttle(ReplicaThrottle::none().with_replica_cap(1));
        sched.initialize(&env, &stores);
        let w0 = WorkerId::new(SiteId(0), 0);
        let w1 = WorkerId::new(SiteId(1), 0);
        let w2 = WorkerId::new(SiteId(2), 0);
        // Leave exactly two of w2's queued tasks pending; everything else
        // is done, so w0/w1 can only replicate those two.
        let mut keep: Vec<TaskId> = sched.queue_of(w2).iter().copied().take(2).collect();
        keep.sort_unstable();
        let (a, b) = (keep[0], keep[1]);
        complete_all_except(&mut sched, w2, &keep);
        // Both stores are empty → all overlaps zero → lowest id wins.
        let first = match sched.on_worker_idle(w0, &stores[0]) {
            Assignment::Replicate(t) => t,
            other => panic!("expected a replica, got {other:?}"),
        };
        assert_eq!(first, a);
        assert_eq!(sched.task_replicas[a.index()], 1);
        // With cap 1 the second idle worker must pick the *other* task.
        match sched.on_worker_idle(w1, &stores[1]) {
            Assignment::Replicate(t) => assert_eq!(t, b, "cap 1 forbids a second copy of {a}"),
            other => panic!("expected a replica, got {other:?}"),
        }
        // Aborting the first replica frees the task again.
        sched.on_replica_aborted(w0, a);
        assert_eq!(sched.task_replicas[a.index()], 0);
        match sched.on_worker_idle(w0, &stores[0]) {
            Assignment::Replicate(t) => assert_eq!(t, a, "freed task is the best pick again"),
            other => panic!("expected a replica, got {other:?}"),
        }
    }

    #[test]
    fn site_budget_parks_saturated_site() {
        let mut cfg = CoaddConfig::small(0);
        cfg.shuffle_tasks = false;
        let wl = Arc::new(cfg.generate());
        let env = GridEnv {
            sites: 2,
            workers_per_site: 2,
            capacity_files: 500,
        };
        let stores: Vec<SiteStore> = (0..2)
            .map(|_| SiteStore::new(500, EvictionPolicy::Lru))
            .collect();
        let mut sched = StorageAffinity::new(wl)
            .with_budget_slack(1.0)
            .with_throttle(ReplicaThrottle::none().with_site_budget(1));
        sched.initialize(&env, &stores);
        let w00 = WorkerId::new(SiteId(0), 0);
        let w01 = WorkerId::new(SiteId(0), 1);
        let w10 = WorkerId::new(SiteId(1), 0);
        // Keep two of site 1's queued tasks; site 0 has nothing left to
        // run, so its two workers both turn to replication.
        let keep: Vec<TaskId> = sched.queue_of(w10).iter().copied().take(2).collect();
        complete_all_except(&mut sched, w10, &keep);
        let t = match sched.on_worker_idle(w00, &stores[0]) {
            Assignment::Replicate(t) => t,
            other => panic!("expected a replica, got {other:?}"),
        };
        assert_eq!(sched.site_inflight[0], 1);
        // The site's single replica slot is taken: the second worker waits.
        assert_eq!(sched.on_worker_idle(w01, &stores[0]), Assignment::Wait);
        // Slot frees when the replica resolves.
        sched.on_replica_aborted(w00, t);
        assert_eq!(sched.site_inflight[0], 0);
        assert!(matches!(
            sched.on_worker_idle(w01, &stores[0]),
            Assignment::Replicate(_)
        ));
    }

    #[test]
    fn inactive_throttle_keeps_counters_dormant() {
        let (mut sched, stores, _env) = setup(2, 1);
        let w0 = WorkerId::new(SiteId(0), 0);
        let w1 = WorkerId::new(SiteId(1), 0);
        let keep: Vec<TaskId> = sched.queue_of(w1).iter().copied().take(1).collect();
        complete_all_except(&mut sched, w1, &keep);
        match sched.on_worker_idle(w0, &stores[0]) {
            Assignment::Replicate(t) => {
                assert!(sched.replica_at.is_empty(), "no bookkeeping when inactive");
                assert_eq!(sched.task_replicas[t.index()], 0);
            }
            other => panic!("expected a replica, got {other:?}"),
        }
    }

    #[test]
    fn all_tasks_complete_exactly_once() {
        let (mut sched, stores, env) = setup(3, 2);
        let mut completions = 0;
        // Round-robin all workers until everyone is Finished.
        let workers: Vec<WorkerId> = env.workers().collect();
        let mut slots: Vec<Option<TaskId>> = vec![None; workers.len()];
        let mut finished = std::collections::HashSet::new();
        while finished.len() < workers.len() {
            for i in 0..workers.len() {
                let w = workers[i];
                if finished.contains(&w) {
                    continue;
                }
                if let Some(t) = slots[i].take() {
                    let out = sched.on_task_complete(w, t);
                    assert!(sched.done[t.index()], "completion not recorded");
                    completions += 1;
                    for cw in out.cancel_replicas {
                        sched.on_replica_aborted(cw, t);
                        // the cancelled worker becomes idle again
                        let j = workers.iter().position(|x| *x == cw).unwrap();
                        slots[j] = None;
                    }
                    continue;
                }
                match sched.on_worker_idle(w, &stores[w.site.index()]) {
                    Assignment::Run(t) | Assignment::Replicate(t) => slots[i] = Some(t),
                    Assignment::Wait => {}
                    Assignment::Finished => {
                        finished.insert(w);
                    }
                }
            }
        }
        assert_eq!(sched.unfinished(), 0);
        assert_eq!(completions, 200, "each task completes exactly once");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use gridsched_storage::EvictionPolicy;
    use gridsched_workload::coadd::CoaddConfig;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Initialization queues every task exactly once, respecting the
        /// per-site budget, for any grid shape.
        #[test]
        fn assignment_partitions_tasks(
            sites in 1usize..8,
            wps in 1usize..5,
            capacity in 50usize..2000,
            tasks in 50u32..300,
            seed in 0u64..4,
        ) {
            let mut cfg = CoaddConfig::small(seed);
            cfg.tasks = tasks;
            let wl = Arc::new(cfg.generate());
            let env = GridEnv { sites, workers_per_site: wps, capacity_files: capacity };
            let stores: Vec<SiteStore> = (0..sites)
                .map(|_| SiteStore::new(capacity, EvictionPolicy::Lru))
                .collect();
            let mut sched = StorageAffinity::new(Arc::clone(&wl));
            sched.initialize(&env, &stores);

            let mut seen = vec![0u32; wl.task_count()];
            let mut per_site = vec![0usize; sites];
            for w in env.workers() {
                for &t in sched.queue_of(w) {
                    seen[t.index()] += 1;
                    per_site[w.site.index()] += 1;
                }
            }
            prop_assert!(seen.iter().all(|&c| c == 1), "each task queued exactly once");
            let budget = ((wl.task_count() as f64 / sites as f64) * 2.0).ceil() as usize;
            for (s, &count) in per_site.iter().enumerate() {
                prop_assert!(count <= budget, "site {s} over budget: {count} > {budget}");
            }
        }
    }
}
