//! Cache-replacement policies for site storage.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which file to evict when the storage is full.
///
/// The paper does not pin down the replacement policy of its simulated data
/// servers; LRU is the natural default for workloads with sliding spatial
/// locality like Coadd, and the `ablation_policy` experiment compares all
/// three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Evict the least-recently-*used* file (use = task execution touching
    /// the file, or arrival).
    #[default]
    Lru,
    /// Evict the oldest-inserted file.
    Fifo,
    /// Evict the least-frequently-used file (ties by age).
    Lfu,
}

impl EvictionPolicy {
    /// All policies, for sweeps.
    pub const ALL: [EvictionPolicy; 3] = [
        EvictionPolicy::Lru,
        EvictionPolicy::Fifo,
        EvictionPolicy::Lfu,
    ];
}

impl fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Fifo => "fifo",
            EvictionPolicy::Lfu => "lfu",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for EvictionPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "lru" => Ok(EvictionPolicy::Lru),
            "fifo" => Ok(EvictionPolicy::Fifo),
            "lfu" => Ok(EvictionPolicy::Lfu),
            other => Err(format!("unknown eviction policy `{other}` (lru|fifo|lfu)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips() {
        for p in EvictionPolicy::ALL {
            let s = p.to_string();
            assert_eq!(s.parse::<EvictionPolicy>().unwrap(), p);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("mru".parse::<EvictionPolicy>().is_err());
    }

    #[test]
    fn default_is_lru() {
        assert_eq!(EvictionPolicy::default(), EvictionPolicy::Lru);
    }
}
