//! Regression tests for the proactive-replication push path
//! (`maybe_replicate`): empty candidate slates must not touch the
//! placement RNG, full coverage must stop the per-reference `O(S)`
//! candidate re-scan for good, and outage windows must only *defer*
//! pushes, never leak state into later placement decisions.

use std::sync::Arc;

use gridsched::prelude::*;

fn workload() -> Arc<Workload> {
    let mut cfg = CoaddConfig::small(0);
    cfg.tasks = 150;
    Arc::new(cfg.generate())
}

fn base(threshold: u32, max_replicas: u32) -> SimConfig {
    SimConfig::paper(workload(), StrategyKind::Rest)
        .with_sites(3)
        .with_capacity(6000) // covers the file universe: no evictions
        .with_seed(2)
        .with_replication(ReplicationConfig {
            popularity_threshold: threshold,
            max_replicas_per_file: max_replicas,
        })
}

/// Aggressive replication (low threshold, generous per-file budget) on a
/// no-eviction grid: files reach full coverage quickly, so the exhaustion
/// path runs constantly — the run must stay deterministic, complete, and
/// keep its push count within the hard per-file budget. (The precise
/// RNG-neutrality of empty-slate attempts is pinned down by the engine's
/// `push_attempts_on_empty_slates_leave_rng_and_later_decisions_unchanged`
/// unit test, which drives `maybe_replicate` directly.)
#[test]
fn aggressive_replication_with_exhaustion_is_deterministic() {
    let report = GridSim::new(base(2, 5)).run();
    assert_eq!(report.tasks_completed, 150);
    assert!(report.replication_pushes > 0, "pushes must actually happen");
    let universe = workload().file_count() as u64;
    assert!(
        report.replication_pushes <= 5 * universe,
        "per-file budget bounds the pushes: {} > 5×{universe}",
        report.replication_pushes
    );
    assert_eq!(GridSim::new(base(2, 5)).run(), report);
}

/// `max_replicas_per_file > 1` with a data server going down mid-sequence:
/// the outage window only defers the second push (down servers cannot
/// receive, and the outage empties the survivor anyway); the file stays
/// eligible and the push lands after repair. The run completes and is
/// deterministic.
#[test]
fn down_server_defers_pushes_until_repair() {
    let make = || {
        let trace = FaultTrace::parse("120 server-fail 1\n2400 server-recover 1\n")
            .expect("valid fault trace");
        base(1, 2)
            .with_sites(2)
            .with_faults(FaultConfig::none().with_trace(trace))
    };
    let report = GridSim::new(make()).run();
    assert_eq!(report.tasks_completed, 150);
    assert_eq!(report.server_outages, 1);
    assert!(
        report.replication_pushes > 0,
        "pushes must resume after the repair"
    );
    // With 2 sites and one push budget consumed per landing, pushes are
    // bounded by the (refetched) file universe.
    let again = GridSim::new(make()).run();
    assert_eq!(report, again, "outage windows must not break determinism");
}

/// An all-servers-down window at the moment a file crosses its popularity
/// threshold: the push attempt is skipped without consuming the RNG and
/// without marking the file exhausted — later references push normally.
/// Both sides of the comparison see the same outage, so any difference
/// could only come from push-path state leaking across the window.
#[test]
fn all_servers_down_window_keeps_file_eligible() {
    let make = |max_replicas| {
        // Site 0 is the origin for early references; both other sites are
        // down for the opening window, so every early crossing sees an
        // empty candidate slate.
        let trace = FaultTrace::parse(
            "1 server-fail 1\n1 server-fail 2\n1800 server-recover 1\n1800 server-recover 2\n",
        )
        .expect("valid fault trace");
        base(1, max_replicas).with_faults(FaultConfig::none().with_trace(trace))
    };
    let report = GridSim::new(make(2)).run();
    assert_eq!(report.tasks_completed, 150);
    assert_eq!(report.server_outages, 2);
    assert!(
        report.replication_pushes > 0,
        "files crossing the threshold during the outage must still be \
         pushed once servers are back"
    );
    // The full-coverage equality also holds across the outage: deferred
    // pushes and exhaustion interact deterministically.
    assert_eq!(GridSim::new(make(2)).run(), report);
}
