//! Worker compute-speed models.
//!
//! The paper: "Each worker's computation capacity (in MFLOPS) is chosen
//! randomly from top500 list and is divided by 100, since most of the 500
//! machines are too powerful." The June-2007 Top500 Rmax column is well
//! approximated by a power law `Rmax(rank) ≈ 280.6 · rank^{-0.7}` TFLOPS
//! (#1 BlueGene/L ≈ 280.6 TF, #10 ≈ 56 TF, #100 ≈ 11 TF, #500 ≈ 3.6 TF);
//! [`SpeedModel::Top500Like`] samples a uniform rank and applies that
//! curve, divided by 100 — same procedure, synthetic list. Only the
//! *relative heterogeneity* of workers matters to the schedulers.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// How worker speeds (FLOP/s) are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpeedModel {
    /// Synthetic June-2007 Top500 Rmax curve divided by `divisor`
    /// (paper: 100).
    Top500Like {
        /// Rmax of rank 1, in TFLOPS.
        top_tflops: f64,
        /// Power-law decay exponent of Rmax versus rank.
        alpha: f64,
        /// List length to sample ranks from.
        entries: u32,
        /// The paper divides each entry by this factor.
        divisor: f64,
    },
    /// Every worker runs at exactly this many FLOP/s (deterministic tests).
    Fixed(f64),
    /// Uniform in `[min, max]` FLOP/s.
    Uniform {
        /// Lower bound, FLOP/s.
        min: f64,
        /// Upper bound, FLOP/s.
        max: f64,
    },
}

impl Default for SpeedModel {
    fn default() -> Self {
        SpeedModel::paper()
    }
}

impl SpeedModel {
    /// The paper's model: Top500(June 2007)-like, divided by 100.
    #[must_use]
    pub fn paper() -> Self {
        SpeedModel::Top500Like {
            top_tflops: 280.6,
            alpha: 0.7,
            entries: 500,
            divisor: 100.0,
        }
    }

    /// Samples one worker speed in FLOP/s.
    ///
    /// # Panics
    ///
    /// Panics if the model is degenerate (non-positive speeds).
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let speed = match *self {
            SpeedModel::Top500Like {
                top_tflops,
                alpha,
                entries,
                divisor,
            } => {
                assert!(top_tflops > 0.0 && divisor > 0.0 && entries >= 1);
                let rank = rng.gen_range(1..=entries) as f64;
                top_tflops * 1e12 * rank.powf(-alpha) / divisor
            }
            SpeedModel::Fixed(s) => s,
            SpeedModel::Uniform { min, max } => {
                assert!(min > 0.0 && max >= min, "bad uniform speed range");
                if min == max {
                    min
                } else {
                    rng.gen_range(min..max)
                }
            }
        };
        assert!(speed > 0.0 && speed.is_finite(), "bad speed {speed}");
        speed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_model_range() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = SpeedModel::paper();
        for _ in 0..1000 {
            let s = m.sample(&mut rng);
            // rank 1: 2.806 TFLOPS; rank 500: ≈ 36 GFLOPS.
            assert!(s <= 2.807e12, "too fast: {s}");
            assert!(s >= 3.5e10, "too slow: {s}");
        }
    }

    #[test]
    fn paper_model_is_bottom_heavy() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = SpeedModel::paper();
        let speeds: Vec<f64> = (0..10_000).map(|_| m.sample(&mut rng)).collect();
        let median = {
            let mut s = speeds.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[s.len() / 2]
        };
        let mean = speeds.iter().sum::<f64>() / speeds.len() as f64;
        assert!(median < mean, "power law: median {median} < mean {mean}");
    }

    #[test]
    fn fixed_is_fixed() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(SpeedModel::Fixed(1e9).sample(&mut rng), 1e9);
    }

    #[test]
    fn uniform_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = SpeedModel::Uniform {
            min: 10.0,
            max: 20.0,
        };
        for _ in 0..100 {
            let s = m.sample(&mut rng);
            assert!((10.0..20.0).contains(&s));
        }
    }
}
