//! Custom workloads: the schedulers are generic over any Bag-of-Tasks job.
//!
//! Builds two synthetic non-Coadd workloads with the generic
//! [`WorkloadBuilder`] — one with Zipf file popularity (heavy sharing,
//! where locality-aware scheduling shines) and one with uniform popularity
//! (little sharing, the adversarial case) — and compares `rest` against
//! the no-locality workqueue on both. Also shows trace round-tripping.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use std::sync::Arc;

use gridsched::prelude::*;
use gridsched::workload::trace;

fn compare(label: &str, workload: Arc<Workload>) {
    println!(
        "--- {label}: {} tasks / {} files ---",
        workload.task_count(),
        workload.file_count()
    );
    for strategy in [StrategyKind::Rest, StrategyKind::Workqueue] {
        let config = SimConfig::paper(workload.clone(), strategy).with_sites(5);
        let report = GridSim::new(config).run();
        println!(
            "  {:<10} makespan {:>8.0} min, {:>6} transfers",
            strategy.to_string(),
            report.makespan_minutes,
            report.file_transfers
        );
    }
}

fn main() {
    // Heavy sharing: a few hot files dominate (Ranganathan & Foster's
    // assumed distribution).
    let zipf = Arc::new(
        WorkloadBuilder::new(800, 4000)
            .files_per_task(20, 60)
            .popularity(Popularity::Zipf(1.1))
            .flops_per_file(2.9e12)
            .seed(7)
            .build(),
    );
    compare("zipf popularity", zipf.clone());

    // Little sharing: uniform selection over a large universe.
    let uniform = Arc::new(
        WorkloadBuilder::new(800, 40_000)
            .files_per_task(20, 60)
            .popularity(Popularity::Uniform)
            .flops_per_file(2.9e12)
            .seed(7)
            .build(),
    );
    compare("uniform popularity", uniform);

    // Persist a workload as a plain-text trace and read it back — the
    // format a user would feed a *real* task→files mapping through.
    let mut buf = Vec::new();
    trace::write_trace(&zipf, &mut buf).expect("in-memory write cannot fail");
    let reloaded = trace::read_trace(buf.as_slice()).expect("round-trip");
    assert_eq!(*zipf, reloaded);
    println!();
    println!(
        "trace round-trip OK ({} bytes for {} tasks)",
        buf.len(),
        reloaded.task_count()
    );
}
