//! The optimisation-correctness contract: every scheduler evaluation path
//! — `Naive` (the paper's per-decision file probing), `Indexed` (cached
//! counters) and `Incremental` (bucketed priority indexes, the default) —
//! must produce **byte-identical simulations**: the same assignment
//! sequence, hence the same event trace, hence the same `MetricsReport`
//! down to the last bit of every float.
//!
//! Checked for all strategies over random grid shapes, with randomized
//! `ChooseTask(2)` selection (which also pins down RNG-consumption
//! equality), and under fault injection + checkpoint/restart, where pool
//! membership churns (requeues) mid-run.

use std::sync::Arc;

use proptest::prelude::*;

use gridsched::prelude::*;

fn arb_strategy() -> impl Strategy<Value = StrategyKind> {
    prop_oneof![
        Just(StrategyKind::StorageAffinity),
        Just(StrategyKind::Overlap),
        Just(StrategyKind::Rest),
        Just(StrategyKind::Combined),
        Just(StrategyKind::Rest2),
        Just(StrategyKind::Combined2),
        Just(StrategyKind::Workqueue),
        Just(StrategyKind::Sufferage),
    ]
}

fn run_with(config: &SimConfig, mode: EvalMode) -> MetricsReport {
    GridSim::new(config.clone().with_eval_mode(mode)).run()
}

/// Like [`run_with`], but with every instrument, span and probe recording
/// live (no file outputs — the collector is injected directly).
fn run_traced(config: &SimConfig, mode: EvalMode) -> MetricsReport {
    GridSim::new(config.clone().with_eval_mode(mode))
        .with_telemetry(Telemetry::enabled())
        .run()
}

proptest! {
    // Whole-simulation cases are expensive; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fault-free runs: all three paths agree exactly.
    #[test]
    fn eval_modes_agree(
        strategy in arb_strategy(),
        sites in 1usize..5,
        workers in 1usize..4,
        capacity in 120usize..1500,
        wl_seed in 0u64..3,
        seed in 0u64..3,
    ) {
        let mut cfg = CoaddConfig::small(wl_seed);
        cfg.tasks = 100;
        let workload = Arc::new(cfg.generate());
        let config = SimConfig::paper(workload, strategy)
            .with_sites(sites)
            .with_workers_per_site(workers)
            .with_capacity(capacity)
            .with_seed(seed);
        let incremental = run_with(&config, EvalMode::Incremental);
        let indexed = run_with(&config, EvalMode::Indexed);
        let naive = run_with(&config, EvalMode::Naive);
        prop_assert_eq!(&incremental, &indexed, "incremental vs indexed ({})", strategy);
        prop_assert_eq!(&incremental, &naive, "incremental vs naive ({})", strategy);
    }

    /// Under churn (requeues through `on_worker_lost`) plus
    /// checkpoint/restart, the paths still agree exactly.
    #[test]
    fn eval_modes_agree_under_churn_and_checkpointing(
        strategy in arb_strategy(),
        sites in 2usize..5,
        seed in 0u64..3,
        mtbf in 2_000.0f64..6_000.0,
        checkpoint in 0u8..2,
    ) {
        let mut cfg = CoaddConfig::small(seed);
        cfg.tasks = 80;
        let workload = Arc::new(cfg.generate());
        let mut config = SimConfig::paper(workload, strategy)
            .with_sites(sites)
            .with_capacity(400)
            .with_seed(seed)
            .with_faults(
                FaultConfig::none()
                    .with_worker_faults(mtbf, 400.0)
                    .with_server_faults(mtbf * 8.0, 700.0),
            );
        if checkpoint == 1 {
            config = config.with_checkpointing(CheckpointConfig::fixed(300.0));
        }
        let incremental = run_with(&config, EvalMode::Incremental);
        let indexed = run_with(&config, EvalMode::Indexed);
        let naive = run_with(&config, EvalMode::Naive);
        prop_assert_eq!(&incremental, &indexed, "incremental vs indexed ({})", strategy);
        prop_assert_eq!(&incremental, &naive, "incremental vs naive ({})", strategy);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Replica-throttled storage affinity: the capped pick — site-budget
    /// pre-check plus saturated tasks withdrawn from the overlap index —
    /// must agree byte-for-byte across all three evaluation paths, with
    /// and without churn-driven requeues.
    #[test]
    fn eval_modes_agree_under_replica_throttle(
        sites in 2usize..5,
        workers in 1usize..4,
        capacity in 120usize..1500,
        cap in prop_oneof![Just(None), (1u32..4).prop_map(Some)],
        budget in prop_oneof![Just(None), (1u32..5).prop_map(Some)],
        mtbf in prop_oneof![Just(None), (2_000.0f64..6_000.0).prop_map(Some)],
        seed in 0u64..3,
    ) {
        let mut throttle = ReplicaThrottle::none();
        if let Some(c) = cap {
            throttle = throttle.with_replica_cap(c);
        }
        if let Some(b) = budget {
            throttle = throttle.with_site_budget(b);
        }
        let mut cfg = CoaddConfig::small(seed);
        cfg.tasks = 100;
        let workload = Arc::new(cfg.generate());
        let mut config = SimConfig::paper(workload, StrategyKind::StorageAffinity)
            .with_sites(sites)
            .with_workers_per_site(workers)
            .with_capacity(capacity)
            .with_seed(seed)
            .with_replica_throttle(throttle);
        if let Some(mtbf) = mtbf {
            config = config.with_faults(FaultConfig::none().with_worker_faults(mtbf, 400.0));
        }
        let incremental = run_with(&config, EvalMode::Incremental);
        let indexed = run_with(&config, EvalMode::Indexed);
        let naive = run_with(&config, EvalMode::Naive);
        prop_assert_eq!(&incremental, &indexed, "incremental vs indexed ({:?})", throttle);
        prop_assert_eq!(&incremental, &naive, "incremental vs naive ({:?})", throttle);
        prop_assert_eq!(incremental.tasks_completed, 100);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The telemetry inertness contract: a run with every instrument, span
    /// and probe recording live produces a byte-identical `MetricsReport`
    /// to a run with telemetry off — no RNG draw, no event reordering, no
    /// float drift — across strategies, grid shapes and churn.
    #[test]
    fn telemetry_is_provably_inert(
        strategy in arb_strategy(),
        sites in 1usize..5,
        workers in 1usize..4,
        capacity in 120usize..1500,
        seed in 0u64..3,
        churn in 0u8..2,
    ) {
        let mut cfg = CoaddConfig::small(seed);
        cfg.tasks = 80;
        let workload = Arc::new(cfg.generate());
        let mut config = SimConfig::paper(workload, strategy)
            .with_sites(sites)
            .with_workers_per_site(workers)
            .with_capacity(capacity)
            .with_seed(seed);
        if churn == 1 && sites >= 2 {
            config = config
                .with_faults(
                    FaultConfig::none()
                        .with_worker_faults(3_000.0, 400.0)
                        .with_server_faults(25_000.0, 700.0),
                )
                .with_checkpointing(CheckpointConfig::fixed(300.0));
        }
        let off = run_with(&config, EvalMode::Incremental);
        let on = run_traced(&config, EvalMode::Incremental);
        prop_assert_eq!(&off, &on, "telemetry perturbed the run ({})", strategy);
    }

    /// The control-plane inertness contract over random shapes: an
    /// explicit `ControlConfig::none()` (every loop off) is byte-identical
    /// to a config that never mentions the control plane, across
    /// strategies, eval modes, grid shapes and churn + checkpointing.
    #[test]
    fn controllers_disabled_are_byte_inert(
        strategy in arb_strategy(),
        sites in 2usize..5,
        workers in 1usize..4,
        seed in 0u64..3,
        mode in prop_oneof![
            Just(EvalMode::Incremental),
            Just(EvalMode::Indexed),
            Just(EvalMode::Naive),
        ],
    ) {
        let mut cfg = CoaddConfig::small(seed);
        cfg.tasks = 80;
        let workload = Arc::new(cfg.generate());
        let config = SimConfig::paper(workload, strategy)
            .with_sites(sites)
            .with_workers_per_site(workers)
            .with_capacity(400)
            .with_seed(seed)
            .with_faults(
                FaultConfig::none()
                    .with_worker_faults(3_000.0, 400.0)
                    .with_server_faults(25_000.0, 700.0),
            )
            .with_checkpointing(CheckpointConfig::fixed(300.0));
        let plain = run_with(&config, mode);
        let explicit =
            GridSim::new(config.with_eval_mode(mode).with_control(ControlConfig::none())).run();
        prop_assert_eq!(&plain, &explicit, "controllers-off perturbed {} {:?}", strategy, mode);
        prop_assert_eq!(plain.config.control.as_str(), "none");
    }
}

/// The acceptance matrix pinned deterministically: telemetry on vs off is
/// byte-identical for **all 8 strategies × all 3 eval modes** under churn
/// and checkpointing, plus throttled storage affinity.
#[test]
fn telemetry_on_off_identical_all_strategies_and_modes() {
    let mut cfg = CoaddConfig::small(3);
    cfg.tasks = 80;
    let workload = Arc::new(cfg.generate());
    let strategies = [
        StrategyKind::StorageAffinity,
        StrategyKind::Overlap,
        StrategyKind::Rest,
        StrategyKind::Combined,
        StrategyKind::Rest2,
        StrategyKind::Combined2,
        StrategyKind::Workqueue,
        StrategyKind::Sufferage,
    ];
    for strategy in strategies {
        let config = SimConfig::paper(Arc::clone(&workload), strategy)
            .with_sites(3)
            .with_capacity(400)
            .with_seed(2)
            .with_faults(
                FaultConfig::none()
                    .with_worker_faults(3_000.0, 400.0)
                    .with_server_faults(25_000.0, 700.0),
            )
            .with_checkpointing(CheckpointConfig::fixed(300.0));
        for mode in [EvalMode::Incremental, EvalMode::Indexed, EvalMode::Naive] {
            let off = run_with(&config, mode);
            let on = run_traced(&config, mode);
            assert_eq!(off, on, "telemetry perturbed {strategy} in {mode:?}");
        }
    }
    // Throttled storage affinity: the throttle instruments record on the
    // admit/park/release hot path — they must still change nothing.
    let config = SimConfig::paper(workload, StrategyKind::StorageAffinity)
        .with_sites(3)
        .with_capacity(400)
        .with_seed(2)
        .with_replica_throttle(
            ReplicaThrottle::none()
                .with_replica_cap(1)
                .with_site_budget(2),
        )
        .with_faults(FaultConfig::none().with_worker_faults(3_000.0, 400.0));
    for mode in [EvalMode::Incremental, EvalMode::Indexed, EvalMode::Naive] {
        let off = run_with(&config, mode);
        let on = run_traced(&config, mode);
        assert_eq!(off, on, "telemetry perturbed the throttled run in {mode:?}");
    }
}

/// Determinism digests and the /metrics exposition ride the dispatch
/// loop itself (the digest folds every popped event; the server publishes
/// rendered snapshots) — they must be exactly as inert as the rest of the
/// telemetry stack: byte-identical `MetricsReport`, identical
/// `events_dispatched`, whether or not a digest is being folded and an
/// HTTP thread is serving.
#[test]
fn digests_and_exposition_are_inert() {
    let mut cfg = CoaddConfig::small(5);
    cfg.tasks = 80;
    let workload = Arc::new(cfg.generate());
    let digest_path = std::env::temp_dir().join(format!(
        "gridsched-inertness-{}.digest.jsonl",
        std::process::id()
    ));
    let digest_path = digest_path.to_str().expect("utf-8 temp path").to_string();
    for strategy in [
        StrategyKind::StorageAffinity,
        StrategyKind::Combined2,
        StrategyKind::Sufferage,
    ] {
        let base = SimConfig::paper(Arc::clone(&workload), strategy)
            .with_sites(3)
            .with_capacity(400)
            .with_seed(2)
            .with_faults(
                FaultConfig::none()
                    .with_worker_faults(3_000.0, 400.0)
                    .with_server_faults(25_000.0, 700.0),
            )
            .with_checkpointing(CheckpointConfig::fixed(300.0));
        let plain = GridSim::new(base.clone()).run();
        let observed = GridSim::new(
            base.clone()
                .with_digest_out(&digest_path)
                .with_digest_window(600.0)
                .with_serve_metrics("127.0.0.1:0"),
        )
        .with_telemetry(Telemetry::enabled())
        .run();
        assert_eq!(plain, observed, "digest/exposition perturbed {strategy}");
        assert_eq!(plain.events_dispatched, observed.events_dispatched);
        // The digest really was written, and covers every dispatched event.
        let stream = DigestStream::parse_jsonl(
            &std::fs::read_to_string(&digest_path).expect("digest file written"),
        )
        .expect("digest parses");
        assert_eq!(stream.events, plain.events_dispatched, "{strategy}");
    }
    let _ = std::fs::remove_file(&digest_path);
}

/// The new flags' default-off path: a config that never mentions the
/// throttle and one that passes `ReplicaThrottle::none()` explicitly (what
/// the CLI builds when `--replica-cap`/`--site-replica-budget` are absent)
/// produce byte-identical reports with the throttle summarised as "none".
#[test]
fn throttle_default_off_is_inert() {
    let mut cfg = CoaddConfig::small(0);
    cfg.tasks = 120;
    let workload = Arc::new(cfg.generate());
    let base = SimConfig::paper(workload, StrategyKind::StorageAffinity)
        .with_sites(3)
        .with_capacity(500)
        .with_seed(1);
    let plain = GridSim::new(base.clone()).run();
    let explicit = GridSim::new(base.with_replica_throttle(ReplicaThrottle::none())).run();
    assert_eq!(plain, explicit);
    assert_eq!(plain.config.replica_throttle, "none");
}

/// The control plane's default-off path: a config that never mentions the
/// controllers and one that passes `ControlConfig::none()` explicitly
/// (what the CLI builds when `--adaptive` is absent) produce
/// byte-identical reports with the control summarised as "none".
#[test]
fn controls_default_off_is_inert() {
    let mut cfg = CoaddConfig::small(0);
    cfg.tasks = 120;
    let workload = Arc::new(cfg.generate());
    let base = SimConfig::paper(workload, StrategyKind::StorageAffinity)
        .with_sites(3)
        .with_capacity(500)
        .with_seed(1)
        .with_faults(FaultConfig::none().with_worker_faults(3_000.0, 400.0));
    let plain = GridSim::new(base.clone()).run();
    let explicit = GridSim::new(base.with_control(ControlConfig::none())).run();
    assert_eq!(plain, explicit);
    assert_eq!(plain.config.control, "none");
}

/// The controllers-disabled byte-identity matrix: with every loop off, all
/// 8 strategies × all 3 eval modes under churn + checkpointing (plus the
/// replica throttle on storage affinity) produce byte-identical
/// `MetricsReport`s AND byte-identical determinism-digest streams whether
/// the config spells out `ControlConfig::none()` or never mentions the
/// control plane at all — the tick scaffolding, breaker gating hooks and
/// scored push targeting must all be dead code when no loop is enabled.
#[test]
fn controllers_disabled_byte_identity_full_matrix() {
    let mut cfg = CoaddConfig::small(3);
    cfg.tasks = 80;
    let workload = Arc::new(cfg.generate());
    let tmp = std::env::temp_dir();
    let digest_a = tmp.join(format!("gridsched-ctrl-off-a-{}.jsonl", std::process::id()));
    let digest_b = tmp.join(format!("gridsched-ctrl-off-b-{}.jsonl", std::process::id()));
    let (digest_a, digest_b) = (
        digest_a.to_str().expect("utf-8 temp path").to_string(),
        digest_b.to_str().expect("utf-8 temp path").to_string(),
    );
    let strategies = [
        StrategyKind::StorageAffinity,
        StrategyKind::Overlap,
        StrategyKind::Rest,
        StrategyKind::Combined,
        StrategyKind::Rest2,
        StrategyKind::Combined2,
        StrategyKind::Workqueue,
        StrategyKind::Sufferage,
    ];
    for strategy in strategies {
        let mut base = SimConfig::paper(Arc::clone(&workload), strategy)
            .with_sites(3)
            .with_capacity(400)
            .with_seed(2)
            .with_faults(
                FaultConfig::none()
                    .with_worker_faults(3_000.0, 400.0)
                    .with_server_faults(25_000.0, 700.0),
            )
            .with_checkpointing(CheckpointConfig::fixed(300.0));
        if strategy == StrategyKind::StorageAffinity {
            base = base.with_replica_throttle(
                ReplicaThrottle::none()
                    .with_replica_cap(1)
                    .with_site_budget(2),
            );
        }
        for mode in [EvalMode::Incremental, EvalMode::Indexed, EvalMode::Naive] {
            let plain =
                GridSim::new(base.clone().with_eval_mode(mode).with_digest_out(&digest_a)).run();
            let explicit = GridSim::new(
                base.clone()
                    .with_eval_mode(mode)
                    .with_control(ControlConfig::none())
                    .with_digest_out(&digest_b),
            )
            .run();
            assert_eq!(
                plain, explicit,
                "ControlConfig::none() perturbed {strategy} in {mode:?}"
            );
            assert_eq!(plain.config.control, "none");
            let bytes_a = std::fs::read(&digest_a).expect("digest a written");
            let bytes_b = std::fs::read(&digest_b).expect("digest b written");
            assert_eq!(
                bytes_a, bytes_b,
                "digest streams diverged for {strategy} in {mode:?}"
            );
        }
    }
    let _ = std::fs::remove_file(&digest_a);
    let _ = std::fs::remove_file(&digest_b);
}

/// Controllers **enabled** must still be deterministic: two identical runs
/// with every loop live — adaptive throttle, churn-aware placement with
/// breakers, self-tuning Young–Daly — under correlated crash bursts
/// produce byte-identical reports and byte-identical digest streams.
#[test]
fn controllers_enabled_runs_are_repeatable() {
    let mut cfg = CoaddConfig::small(4);
    cfg.tasks = 80;
    let workload = Arc::new(cfg.generate());
    let tmp = std::env::temp_dir();
    let digest_a = tmp.join(format!("gridsched-ctrl-on-a-{}.jsonl", std::process::id()));
    let digest_b = tmp.join(format!("gridsched-ctrl-on-b-{}.jsonl", std::process::id()));
    let (digest_a, digest_b) = (
        digest_a.to_str().expect("utf-8 temp path").to_string(),
        digest_b.to_str().expect("utf-8 temp path").to_string(),
    );
    let base = SimConfig::paper(workload, StrategyKind::StorageAffinity)
        .with_sites(3)
        .with_workers_per_site(2)
        .with_capacity(400)
        .with_seed(2)
        .with_faults(
            FaultConfig::none()
                .with_worker_faults(2_500.0, 400.0)
                .with_worker_bursts(3_000.0, 2),
        )
        .with_checkpointing(CheckpointConfig::young_daly_adaptive())
        .with_control(
            ControlConfig::none()
                .with_adaptive_throttle()
                .with_churn_placement()
                .with_adaptive_checkpoint()
                .with_tick_s(120.0),
        );
    let a = GridSim::new(base.clone().with_digest_out(&digest_a)).run();
    let b = GridSim::new(base.clone().with_digest_out(&digest_b)).run();
    assert_eq!(a, b, "controllers-enabled repeat runs diverged");
    assert_eq!(a.tasks_completed, 80);
    assert_eq!(a.config.control, "throttle+placement+checkpoint tick=120s");
    let bytes_a = std::fs::read(&digest_a).expect("digest a written");
    let bytes_b = std::fs::read(&digest_b).expect("digest b written");
    assert_eq!(
        bytes_a, bytes_b,
        "controllers-enabled digest streams diverged"
    );
    let stream = DigestStream::parse_jsonl(&String::from_utf8(bytes_a).expect("digest is utf-8"))
        .expect("digest parses");
    assert_eq!(stream.events, a.events_dispatched);
    let _ = std::fs::remove_file(&digest_a);
    let _ = std::fs::remove_file(&digest_b);
}

/// The transfer guard's zero-link-fault contract: with no link faults
/// configured, the guard's armed-but-always-cancelled deadlines must leave
/// the run byte-identical to today's — for **all 8 strategies × all 3 eval
/// modes** under worker/server churn + checkpointing. Cancelled guard
/// events never dispatch, so the determinism-digest streams compare equal
/// byte-for-byte, and the reports agree on everything except the config
/// summary line that names the guard.
#[test]
fn transfer_guard_without_link_faults_is_byte_inert() {
    let mut cfg = CoaddConfig::small(3);
    cfg.tasks = 80;
    let workload = Arc::new(cfg.generate());
    let tmp = std::env::temp_dir();
    let digest_a = tmp.join(format!("gridsched-guard-off-{}.jsonl", std::process::id()));
    let digest_b = tmp.join(format!("gridsched-guard-on-{}.jsonl", std::process::id()));
    let (digest_a, digest_b) = (
        digest_a.to_str().expect("utf-8 temp path").to_string(),
        digest_b.to_str().expect("utf-8 temp path").to_string(),
    );
    let strategies = [
        StrategyKind::StorageAffinity,
        StrategyKind::Overlap,
        StrategyKind::Rest,
        StrategyKind::Combined,
        StrategyKind::Rest2,
        StrategyKind::Combined2,
        StrategyKind::Workqueue,
        StrategyKind::Sufferage,
    ];
    for strategy in strategies {
        let base = SimConfig::paper(Arc::clone(&workload), strategy)
            .with_sites(3)
            .with_capacity(400)
            .with_seed(2)
            .with_faults(
                FaultConfig::none()
                    .with_worker_faults(3_000.0, 400.0)
                    .with_server_faults(25_000.0, 700.0),
            )
            .with_checkpointing(CheckpointConfig::fixed(300.0));
        let guarded = base
            .clone()
            .with_transfer_timeout(4.0)
            .with_transfer_retries(3)
            .with_retry_backoff(30.0);
        for mode in [EvalMode::Incremental, EvalMode::Indexed, EvalMode::Naive] {
            let plain =
                GridSim::new(base.clone().with_eval_mode(mode).with_digest_out(&digest_a)).run();
            let on = GridSim::new(
                guarded
                    .clone()
                    .with_eval_mode(mode)
                    .with_digest_out(&digest_b),
            )
            .run();
            assert_eq!(
                on.xfer_timeouts, 0,
                "{strategy} {mode:?}: guard fired with no faults"
            );
            assert_eq!(on.flows_retrying, 0, "{strategy} {mode:?}");
            assert_eq!(on.flows_requeued, 0, "{strategy} {mode:?}");
            // Whole-report equality modulo the config summary naming the
            // guard.
            let mut normalized = on.clone();
            normalized.config.transfer_guard = plain.config.transfer_guard.clone();
            assert_eq!(
                plain, normalized,
                "transfer guard perturbed {strategy} in {mode:?}"
            );
            let bytes_a = std::fs::read(&digest_a).expect("digest a written");
            let bytes_b = std::fs::read(&digest_b).expect("digest b written");
            assert_eq!(
                bytes_a, bytes_b,
                "digest streams diverged for {strategy} in {mode:?}"
            );
        }
    }
    let _ = std::fs::remove_file(&digest_a);
    let _ = std::fs::remove_file(&digest_b);
}

/// The sparse-propagation path at the site counts where it actually
/// matters: with S ≥ 32 every pool insert/remove used to broadcast into
/// 32+ rank indexes, and sufferage's best-two refresh rescanned 32+ sites
/// per storage event — the lazy journal/repair machinery and the
/// per-task site sets replace all of that, and must stay byte-identical
/// to the scan paths for **all** strategies with churn and checkpointing
/// requeuing tasks mid-run (plus a replica-throttled storage-affinity
/// variant, whose cap releases exercise the become-live journal under a
/// wide fan-out).
#[test]
fn eval_modes_agree_large_s() {
    let mut cfg = CoaddConfig::small(7);
    cfg.tasks = 120;
    let workload = Arc::new(cfg.generate());
    let strategies = [
        StrategyKind::StorageAffinity,
        StrategyKind::Overlap,
        StrategyKind::Rest,
        StrategyKind::Combined,
        StrategyKind::Rest2,
        StrategyKind::Combined2,
        StrategyKind::Workqueue,
        StrategyKind::Sufferage,
    ];
    for strategy in strategies {
        let config = SimConfig::paper(Arc::clone(&workload), strategy)
            .with_sites(32)
            .with_capacity(400)
            .with_seed(2)
            .with_faults(
                FaultConfig::none()
                    .with_worker_faults(3_000.0, 400.0)
                    .with_server_faults(25_000.0, 700.0),
            )
            .with_checkpointing(CheckpointConfig::fixed(300.0));
        let incremental = run_with(&config, EvalMode::Incremental);
        let indexed = run_with(&config, EvalMode::Indexed);
        let naive = run_with(&config, EvalMode::Naive);
        assert_eq!(incremental, indexed, "incremental vs indexed ({strategy})");
        assert_eq!(incremental, naive, "incremental vs naive ({strategy})");
        assert_eq!(incremental.tasks_completed, 120, "{strategy}");
    }
    // Replica-throttled storage affinity at 32 sites: a tight cap keeps
    // tasks cycling through saturation/release, so the lazy re-admission
    // journal is exercised across many sites.
    let config = SimConfig::paper(workload, StrategyKind::StorageAffinity)
        .with_sites(32)
        .with_capacity(400)
        .with_seed(2)
        .with_replica_throttle(
            ReplicaThrottle::none()
                .with_replica_cap(1)
                .with_site_budget(2),
        )
        .with_faults(FaultConfig::none().with_worker_faults(3_000.0, 400.0));
    let incremental = run_with(&config, EvalMode::Incremental);
    let indexed = run_with(&config, EvalMode::Indexed);
    let naive = run_with(&config, EvalMode::Naive);
    assert_eq!(incremental, indexed, "throttled incremental vs indexed");
    assert_eq!(incremental, naive, "throttled incremental vs naive");
    assert_eq!(incremental.tasks_completed, 120);
}

/// A fixed-shape smoke version that always runs (proptest shrinks its own
/// cases; this pins one deterministic configuration for quick triage).
#[test]
fn eval_modes_agree_smoke() {
    let mut cfg = CoaddConfig::small(0);
    cfg.tasks = 120;
    let workload = Arc::new(cfg.generate());
    for strategy in [
        StrategyKind::StorageAffinity,
        StrategyKind::Rest2,
        StrategyKind::Combined2,
        StrategyKind::Sufferage,
    ] {
        let config = SimConfig::paper(Arc::clone(&workload), strategy)
            .with_sites(3)
            .with_capacity(500)
            .with_seed(1);
        let a = run_with(&config, EvalMode::Incremental);
        let b = run_with(&config, EvalMode::Naive);
        assert_eq!(a, b, "{strategy}");
    }
}
