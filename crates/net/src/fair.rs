//! Max–min fair bandwidth allocation by progressive filling.
//!
//! Given link capacities and the set of links each flow crosses, the
//! progressive-filling algorithm raises all flow rates together until a link
//! saturates, freezes the flows crossing it, and repeats. The result is the
//! unique max–min fair allocation: no flow's rate can be increased without
//! decreasing the rate of a flow that already has an equal or smaller rate.
//!
//! This is the allocation model SimGrid's fluid network engine uses (up to
//! SimGrid's optional RTT weighting, which the paper does not rely on).
//!
//! Two implementations share the algorithm:
//!
//! * [`max_min_rates`] — the executable specification: simple, allocates
//!   per call, scans every link per round;
//! * [`MaxMinSolver`] — the hot-path implementation `NetSim` uses for its
//!   per-flow-event recomputes. It is **bit-identical** to the
//!   specification (property-tested via `to_bits`) while touching only the
//!   links flows actually cross: a shared rate accumulator replaces the
//!   per-flow additions (all unsaturated flows accumulate the *same* share
//!   sequence, so one fold reproduces every flow's fold exactly), per-link
//!   repeated subtraction replaces the per-flow route walks (a link's
//!   `remaining` is decremented once per unsaturated crossing flow with
//!   the same value either way), and per-link flow lists make the freeze
//!   step `O(crossing flows)` instead of a full flow scan. Scratch buffers
//!   persist across calls, so a recompute allocates nothing.

/// Computes max–min fair rates.
///
/// * `capacities[l]` — capacity of link `l` (must be positive and finite).
/// * `flow_routes[f]` — the links flow `f` crosses. A flow with an **empty
///   route** shares no link and gets `f64::INFINITY` (used for co-located
///   endpoints).
///
/// Returns one rate per flow.
///
/// # Panics
///
/// Panics if a route references a link `>= capacities.len()` or a capacity
/// is not positive/finite.
///
/// # Complexity
///
/// `O(R · (F + L))` where `R ≤ L` is the number of filling rounds — at least
/// one link saturates per round.
#[must_use]
pub fn max_min_rates(capacities: &[f64], flow_routes: &[Vec<usize>]) -> Vec<f64> {
    for &c in capacities {
        assert!(c.is_finite() && c > 0.0, "capacity must be positive: {c}");
    }
    let n_links = capacities.len();
    let n_flows = flow_routes.len();
    let mut rates = vec![0.0_f64; n_flows];
    let mut saturated = vec![false; n_flows];
    let mut remaining: Vec<f64> = capacities.to_vec();
    // Active flow count per link.
    let mut active = vec![0usize; n_links];
    for route in flow_routes {
        for &l in route {
            assert!(l < n_links, "route references unknown link {l}");
            active[l] += 1;
        }
    }
    for (f, route) in flow_routes.iter().enumerate() {
        if route.is_empty() {
            rates[f] = f64::INFINITY;
            saturated[f] = true;
        }
    }

    loop {
        // Find the tightest link among links carrying unsaturated flows.
        let mut best: Option<(f64, usize)> = None;
        for l in 0..n_links {
            if active[l] == 0 {
                continue;
            }
            let share = remaining[l] / active[l] as f64;
            match best {
                Some((s, _)) if share >= s => {}
                _ => best = Some((share, l)),
            }
        }
        let Some((share, bottleneck)) = best else {
            break; // no unsaturated flows left
        };
        // Freeze every unsaturated flow crossing the bottleneck at
        // `current + share`... with progressive filling all unsaturated flows
        // have the same accumulated rate, tracked implicitly: we add `share`
        // to each unsaturated flow's rate and subtract it on every link they
        // cross, then freeze the bottleneck's flows.
        for (f, route) in flow_routes.iter().enumerate() {
            if saturated[f] || route.is_empty() {
                continue;
            }
            rates[f] += share;
            for &l in route {
                remaining[l] -= share;
            }
        }
        for (f, route) in flow_routes.iter().enumerate() {
            if saturated[f] {
                continue;
            }
            if route.contains(&bottleneck) {
                saturated[f] = true;
                for &l in route {
                    active[l] -= 1;
                }
            }
        }
        // Numerical hygiene: clamp tiny negatives from float error.
        remaining[bottleneck] = remaining[bottleneck].max(0.0);
    }
    rates
}

/// Allocation-free, incrementally-registered progressive filling,
/// bit-identical to [`max_min_rates`]. Keep one solver per
/// [`crate::NetSim`]; flows register once ([`MaxMinSolver::add_flow`] /
/// [`MaxMinSolver::remove_flow`]) instead of being re-described on every
/// recompute, so a [`MaxMinSolver::solve`] call touches only per-call
/// state (no CSR rebuild, no sort, no allocation).
///
/// Every transformation preserves the specification's float operations:
///
/// * all unsaturated flows accumulate the *same* share sequence from the
///   same starting `0.0`, so one shared fold (`acc`) reproduces each
///   flow's per-round additions bit for bit;
/// * a link's `remaining` is decremented once per unsaturated crossing
///   flow with the same share either way, so per-link repeated
///   subtraction yields the same bits (links are mutually independent,
///   order across links immaterial);
/// * `x / 1.0 == x` exactly, so single-flow links skip the division;
/// * links carrying exactly one flow all receive identical per-round
///   subtraction chains, which preserves their relative order (f64
///   subtraction of a common value is weakly monotone) — so the
///   single-flow bottleneck candidate comes from a cursor over a
///   **static** capacity-sorted link order instead of a per-round scan,
///   with an equal-value run walk reproducing the specification's
///   lowest-link-id tie-break when rounding merges adjacent values. Only
///   genuinely shared links (the backbone, a handful per topology) are
///   scanned per round.
///
/// Links can be marked **down** or **degraded** ([`MaxMinSolver::set_link_down`],
/// [`MaxMinSolver::set_link_capacity_factor`]): a down link stalls every
/// crossing flow at rate `0.0` and withdraws those flows from the fill
/// entirely (they consume nothing on their other links), while a degraded
/// link re-enters the fill at `base_capacity × factor`. Both states keep
/// the solver bit-identical to a fresh [`max_min_rates`] call over the
/// effective capacities and the non-stalled flows (property-tested).
#[derive(Debug)]
pub struct MaxMinSolver {
    capacities: Vec<f64>,
    /// Configured capacities; `capacities` is `base × degrade factor`.
    base_capacities: Vec<f64>,
    /// Per link: whether the link is currently down (faulted).
    down: Vec<bool>,
    /// Count of down links (cheap probe-column readback).
    down_count: usize,
    /// Link ids sorted by `(capacity, id)` — re-sorted only when a degrade
    /// factor changes a capacity.
    caps_order: Vec<u32>,
    /// Per link: registered flows crossing it.
    crossing: Vec<u32>,
    /// Per link: registered *non-stalled* flows crossing it — the crossing
    /// count of the reduced system the fill actually solves.
    crossing_up: Vec<u32>,
    /// Per link: the slots of its crossing flows (unordered — the freeze
    /// step's effects commute bitwise).
    link_flows: Vec<Vec<u32>>,
    /// Per slot: the links the flow crosses (with multiplicity).
    routes: Vec<Vec<u32>>,
    /// Per slot: how many down links the flow's route crosses (with
    /// multiplicity). Non-zero ⇒ the flow is stalled at rate `0.0`.
    stalled_by: Vec<u32>,
    free_slots: Vec<u32>,
    live_slots: Vec<u32>,
    live_pos: Vec<u32>,
    /// Ascending link ids with `crossing > 0`.
    touched: Vec<u32>,
    // --- per-call scratch ---
    remaining: Vec<f64>,
    active: Vec<u32>,
    /// Links with ≥ 2 crossing flows at call start, ascending (compacted
    /// as they empty).
    multi: Vec<u32>,
    /// This call's per-round shares — the drain history single-flow links
    /// replay lazily.
    shares: Vec<f64>,
    /// Per link: how many rounds of `shares` have been applied to
    /// `remaining` (single-flow links only; shared links drain eagerly).
    applied: Vec<u32>,
    saturated: Vec<bool>,
    rates: Vec<f64>,
}

/// Applies the outstanding drain history to a lazily-drained link: the
/// same per-round subtractions the specification performs, just deferred
/// until the value is actually read (most single-flow links are never read
/// in a given round — only the head of the capacity order and its
/// equal-value run are).
#[inline]
fn materialize(remaining: &mut [f64], applied: &mut [u32], shares: &[f64], l: usize) {
    let mut k = applied[l] as usize;
    while k < shares.len() {
        remaining[l] -= shares[k];
        k += 1;
    }
    applied[l] = shares.len() as u32;
}

impl MaxMinSolver {
    /// A solver over links with the given capacities (bytes/second).
    ///
    /// # Panics
    ///
    /// Panics if any capacity is non-positive or non-finite.
    #[must_use]
    pub fn new(capacities: Vec<f64>) -> Self {
        for &c in &capacities {
            assert!(c.is_finite() && c > 0.0, "capacity must be positive: {c}");
        }
        let n = capacities.len();
        let mut caps_order: Vec<u32> = (0..n as u32).collect();
        caps_order.sort_unstable_by(|&a, &b| {
            capacities[a as usize]
                .partial_cmp(&capacities[b as usize])
                .expect("finite capacities")
                .then(a.cmp(&b))
        });
        MaxMinSolver {
            base_capacities: capacities.clone(),
            capacities,
            down: vec![false; n],
            down_count: 0,
            caps_order,
            crossing: vec![0; n],
            crossing_up: vec![0; n],
            link_flows: vec![Vec::new(); n],
            routes: Vec::new(),
            stalled_by: Vec::new(),
            free_slots: Vec::new(),
            live_slots: Vec::new(),
            live_pos: Vec::new(),
            touched: Vec::new(),
            remaining: vec![0.0; n],
            active: vec![0; n],
            multi: Vec::new(),
            shares: Vec::new(),
            applied: vec![0; n],
            saturated: Vec::new(),
            rates: Vec::new(),
        }
    }

    /// Registers a flow crossing `route` (empty = co-located endpoints,
    /// rate `+∞`). Returns the flow's slot.
    ///
    /// # Panics
    ///
    /// Panics if the route references a link `>= capacities.len()`.
    pub fn add_flow(&mut self, route: &[usize]) -> u32 {
        let slot = self.free_slots.pop().unwrap_or_else(|| {
            let s = self.routes.len() as u32;
            self.routes.push(Vec::new());
            self.stalled_by.push(0);
            self.saturated.push(false);
            self.rates.push(0.0);
            self.live_pos.push(0);
            s
        });
        let s = slot as usize;
        self.routes[s].clear();
        let mut stalls = 0u32;
        for &l in route {
            assert!(
                l < self.capacities.len(),
                "route references unknown link {l}"
            );
            if self.down[l] {
                stalls += 1;
            }
        }
        self.stalled_by[s] = stalls;
        for &l in route {
            self.routes[s].push(l as u32);
            if self.crossing[l] == 0 {
                let pos = self
                    .touched
                    .binary_search(&(l as u32))
                    .expect_err("link was untouched");
                self.touched.insert(pos, l as u32);
            }
            self.crossing[l] += 1;
            if stalls == 0 {
                self.crossing_up[l] += 1;
            }
            self.link_flows[l].push(slot);
        }
        self.live_pos[s] = self.live_slots.len() as u32;
        self.live_slots.push(slot);
        slot
    }

    /// Unregisters a flow.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not a registered flow.
    pub fn remove_flow(&mut self, slot: u32) {
        let s = slot as usize;
        let was_up = self.stalled_by[s] == 0;
        for j in 0..self.routes[s].len() {
            let l = self.routes[s][j] as usize;
            self.crossing[l] -= 1;
            if was_up {
                self.crossing_up[l] -= 1;
            }
            let lf = &mut self.link_flows[l];
            let pos = lf.iter().position(|&x| x == slot).expect("flow registered");
            lf.swap_remove(pos);
            if self.crossing[l] == 0 {
                let pos = self
                    .touched
                    .binary_search(&(l as u32))
                    .expect("touched link listed");
                self.touched.remove(pos);
            }
        }
        let pos = self.live_pos[s] as usize;
        let last = self.live_slots.pop().expect("slot is live");
        if last != slot {
            self.live_slots[pos] = last;
            self.live_pos[last as usize] = pos as u32;
        }
        self.free_slots.push(slot);
    }

    /// Marks link `l` down: every crossing flow stalls at rate `0.0` on
    /// the next [`MaxMinSolver::solve`] and stops consuming capacity on
    /// the rest of its route.
    ///
    /// # Panics
    ///
    /// Panics if `l` is unknown or already down (the owner drives each
    /// link through strict down/up alternation, like worker churn).
    pub fn set_link_down(&mut self, l: usize) {
        assert!(l < self.down.len(), "unknown link {l}");
        assert!(!self.down[l], "link {l} already down");
        self.down[l] = true;
        self.down_count += 1;
        for i in 0..self.link_flows[l].len() {
            let s = self.link_flows[l][i] as usize;
            if self.stalled_by[s] == 0 {
                // The flow just stalled: withdraw it from every link it
                // crosses (including this one).
                for j in 0..self.routes[s].len() {
                    self.crossing_up[self.routes[s][j] as usize] -= 1;
                }
            }
            self.stalled_by[s] += 1;
        }
    }

    /// Brings link `l` back up; flows stalled solely by it resume.
    ///
    /// # Panics
    ///
    /// Panics if `l` is unknown or not down.
    pub fn set_link_up(&mut self, l: usize) {
        assert!(l < self.down.len(), "unknown link {l}");
        assert!(self.down[l], "link {l} is not down");
        self.down[l] = false;
        self.down_count -= 1;
        for i in 0..self.link_flows[l].len() {
            let s = self.link_flows[l][i] as usize;
            self.stalled_by[s] -= 1;
            if self.stalled_by[s] == 0 {
                for j in 0..self.routes[s].len() {
                    self.crossing_up[self.routes[s][j] as usize] += 1;
                }
            }
        }
    }

    /// Sets link `l`'s effective capacity to `base × factor` (a degraded-
    /// bandwidth window; `1.0` restores the configured capacity exactly).
    /// The capacity-sorted candidate order is re-sorted — an `O(L log L)`
    /// cost paid only on fault transitions, never per solve.
    ///
    /// # Panics
    ///
    /// Panics if `l` is unknown or `factor` is not in `(0, 1]`.
    pub fn set_link_capacity_factor(&mut self, l: usize, factor: f64) {
        assert!(l < self.capacities.len(), "unknown link {l}");
        assert!(
            factor > 0.0 && factor <= 1.0 && factor.is_finite(),
            "degrade factor must be in (0, 1]: {factor}"
        );
        self.capacities[l] = if factor == 1.0 {
            self.base_capacities[l]
        } else {
            self.base_capacities[l] * factor
        };
        let caps = &self.capacities;
        self.caps_order.sort_unstable_by(|&a, &b| {
            caps[a as usize]
                .partial_cmp(&caps[b as usize])
                .expect("finite capacities")
                .then(a.cmp(&b))
        });
    }

    /// Whether link `l` is currently down.
    #[must_use]
    pub fn is_link_down(&self, l: usize) -> bool {
        self.down[l]
    }

    /// Number of links currently down.
    #[must_use]
    pub fn links_down(&self) -> usize {
        self.down_count
    }

    /// Whether the registered flow in `slot` is stalled by a down link.
    #[must_use]
    pub fn flow_stalled(&self, slot: u32) -> bool {
        self.stalled_by[slot as usize] > 0
    }

    /// Number of registered flows.
    #[must_use]
    pub fn flow_count(&self) -> usize {
        self.live_slots.len()
    }

    /// Number of links crossed by at least one registered flow (the
    /// touched-link working set a [`MaxMinSolver::solve`] visits).
    #[must_use]
    pub fn busy_links(&self) -> usize {
        self.touched.len()
    }

    /// Total number of links (registered capacities).
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.capacities.len()
    }

    /// The rate computed for `slot` by the last [`MaxMinSolver::solve`].
    #[must_use]
    pub fn rate(&self, slot: u32) -> f64 {
        self.rates[slot as usize]
    }

    /// An optimistic fair-share rate estimate for a flow over `route`: the
    /// minimum over its links of `capacity / non-stalled crossing flows`
    /// (at least one, so a freshly registered flow counts itself). The true
    /// max–min rate can only exceed this bound — crossing flows that are
    /// bottlenecked elsewhere release bandwidth the estimate does not
    /// claim — which makes it a sound basis for transfer timeouts: a flow
    /// progressing at its fair share never times out. An empty route (no
    /// links crossed) estimates `+∞`.
    #[must_use]
    pub fn fair_share_estimate(&self, route: &[usize]) -> f64 {
        route
            .iter()
            .map(|&l| self.capacities[l] / f64::from(self.crossing_up[l].max(1)))
            .fold(f64::INFINITY, f64::min)
    }

    /// Computes max–min fair rates for the registered flows (read back
    /// with [`MaxMinSolver::rate`]).
    pub fn solve(&mut self) {
        for i in 0..self.live_slots.len() {
            let s = self.live_slots[i] as usize;
            if self.stalled_by[s] > 0 {
                // Stalled by a down link: pre-saturated at zero, invisible
                // to the fill (its `crossing_up` contributions are already
                // withdrawn).
                self.saturated[s] = true;
                self.rates[s] = 0.0;
            } else if self.routes[s].is_empty() {
                self.saturated[s] = true;
                self.rates[s] = f64::INFINITY;
            } else {
                self.saturated[s] = false;
                self.rates[s] = 0.0;
            }
        }
        self.multi.clear();
        self.shares.clear();
        for i in 0..self.touched.len() {
            let l = self.touched[i] as usize;
            self.active[l] = self.crossing_up[l];
            self.remaining[l] = self.capacities[l];
            if self.crossing_up[l] == 1 {
                self.applied[l] = 0;
            } else if self.crossing_up[l] >= 2 {
                self.multi.push(l as u32);
            }
        }
        // Progressive filling; `acc` is the shared accumulated rate of
        // every still-unsaturated flow.
        let mut cursor = 0usize;
        let mut acc = 0.0f64;
        loop {
            // Single-flow candidate: the first still-active entry in the
            // static (capacity, id) order; rounding can merge adjacent
            // values, and the specification breaks value ties by the
            // lowest link id, so walk the equal-value run.
            while cursor < self.caps_order.len() {
                let l = self.caps_order[cursor] as usize;
                if self.crossing_up[l] == 1 && self.active[l] == 1 {
                    break;
                }
                cursor += 1;
            }
            let single = if cursor < self.caps_order.len() {
                let head = self.caps_order[cursor] as usize;
                materialize(&mut self.remaining, &mut self.applied, &self.shares, head);
                let value = self.remaining[head];
                let mut best_l = head;
                let mut j = cursor + 1;
                while j < self.caps_order.len() {
                    let l = self.caps_order[j] as usize;
                    j += 1;
                    if self.crossing_up[l] != 1 || self.active[l] != 1 {
                        continue;
                    }
                    materialize(&mut self.remaining, &mut self.applied, &self.shares, l);
                    if self.remaining[l] == value {
                        best_l = best_l.min(l);
                        continue;
                    }
                    break;
                }
                Some((value, best_l))
            } else {
                None
            };
            // Shared-link candidate: ascending scan (first strictly
            // smaller kept, matching the specification's tie-break),
            // compacting emptied links.
            let mut m_best: Option<(f64, usize)> = None;
            let mut w = 0;
            for i in 0..self.multi.len() {
                let l = self.multi[i] as usize;
                if self.active[l] == 0 {
                    continue;
                }
                self.multi[w] = l as u32;
                w += 1;
                // `x / 1.0 == x` exactly (IEEE 754).
                let share = if self.active[l] == 1 {
                    self.remaining[l]
                } else {
                    self.remaining[l] / f64::from(self.active[l])
                };
                match m_best {
                    Some((s, _)) if share >= s => {}
                    _ => m_best = Some((share, l)),
                }
            }
            self.multi.truncate(w);
            // Combine: strictly smaller wins; equal values go to the
            // lowest link id, exactly like the specification's ascending
            // first-strictly-smaller scan.
            let (share, bottleneck) = match (single, m_best) {
                (None, None) => break,
                (Some((v, l)), None) | (None, Some((v, l))) => (v, l),
                (Some((sv, sl)), Some((mv, ml))) => {
                    if sv < mv {
                        (sv, sl)
                    } else if mv < sv {
                        (mv, ml)
                    } else {
                        (sv, sl.min(ml))
                    }
                }
            };
            acc += share;
            // Drain: one subtraction per unsaturated crossing flow per
            // link (bit-identical to the specification's per-flow route
            // walks; see the type docs). Single-flow links record the
            // share in the history and replay it on their next read;
            // shared links drain eagerly (their values are read every
            // round by the candidate scan).
            self.shares.push(share);
            for i in 0..self.multi.len() {
                let l = self.multi[i] as usize;
                let mut n = self.active[l];
                while n > 0 {
                    self.remaining[l] -= share;
                    n -= 1;
                }
            }
            // Freeze the bottleneck's unsaturated flows at the shared
            // accumulated rate (order within the freeze commutes bitwise:
            // same rate value, integer decrements).
            for i in 0..self.link_flows[bottleneck].len() {
                let f = self.link_flows[bottleneck][i] as usize;
                if self.saturated[f] {
                    continue;
                }
                self.saturated[f] = true;
                self.rates[f] = acc;
                for j in 0..self.routes[f].len() {
                    let l = self.routes[f][j] as usize;
                    self.active[l] -= 1;
                }
            }
            // Numerical hygiene: clamp tiny negatives from float error.
            self.remaining[bottleneck] = self.remaining[bottleneck].max(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn single_flow_gets_full_link() {
        let r = max_min_rates(&[10.0], &[vec![0]]);
        assert!((r[0] - 10.0).abs() < EPS);
    }

    #[test]
    fn two_flows_share_equally() {
        let r = max_min_rates(&[10.0], &[vec![0], vec![0]]);
        assert!((r[0] - 5.0).abs() < EPS);
        assert!((r[1] - 5.0).abs() < EPS);
    }

    #[test]
    fn empty_route_is_infinite() {
        let r = max_min_rates(&[10.0], &[vec![], vec![0]]);
        assert!(r[0].is_infinite());
        assert!((r[1] - 10.0).abs() < EPS);
    }

    #[test]
    fn classic_three_flow_example() {
        // Links: A (cap 10), B (cap 10).
        // f0 crosses A and B, f1 crosses A, f2 crosses B.
        // Max–min: all rates 5.
        let r = max_min_rates(&[10.0, 10.0], &[vec![0, 1], vec![0], vec![1]]);
        for &x in &r {
            assert!((x - 5.0).abs() < EPS, "rates {r:?}");
        }
    }

    #[test]
    fn asymmetric_bottleneck() {
        // Link A cap 2 carries f0; link B cap 10 carries f0 and f1.
        // f0 limited to 2 by A; f1 then gets the rest of B = 8.
        let r = max_min_rates(&[2.0, 10.0], &[vec![0, 1], vec![1]]);
        assert!((r[0] - 2.0).abs() < EPS);
        assert!((r[1] - 8.0).abs() < EPS);
    }

    #[test]
    fn no_flows() {
        let r = max_min_rates(&[1.0, 2.0], &[]);
        assert!(r.is_empty());
    }

    #[test]
    fn fair_share_estimate_lower_bounds_solved_rate() {
        // Link 0 (cap 12) carries three flows; link 1 (cap 2) carries one
        // of them. The estimate for the two-link flow is min(12/3, 2/1) = 2,
        // matching its solved rate; the single-link flows solve to 5 each,
        // above their estimate of 4.
        let mut s = MaxMinSolver::new(vec![12.0, 2.0]);
        let a = s.add_flow(&[0, 1]);
        let b = s.add_flow(&[0]);
        let c = s.add_flow(&[0]);
        assert!((s.fair_share_estimate(&[0, 1]) - 2.0).abs() < EPS);
        assert!((s.fair_share_estimate(&[0]) - 4.0).abs() < EPS);
        s.solve();
        for slot in [a, b, c] {
            let route = if slot == a { vec![0, 1] } else { vec![0] };
            assert!(
                s.rate(slot) >= s.fair_share_estimate(&route) - EPS,
                "estimate must never exceed the solved rate"
            );
        }
        // Empty route: no links crossed, unbounded estimate.
        assert!(s.fair_share_estimate(&[]).is_infinite());
        // Stalled flows are invisible: downing link 1 withdraws flow `a`
        // from link 0's reduced crossing count.
        s.set_link_down(1);
        assert!((s.fair_share_estimate(&[0]) - 6.0).abs() < EPS);
    }

    #[test]
    fn unused_links_ignored() {
        let r = max_min_rates(&[1.0, 100.0], &[vec![0]]);
        assert!((r[0] - 1.0).abs() < EPS);
    }

    #[test]
    fn many_flows_one_link() {
        let routes: Vec<Vec<usize>> = (0..100).map(|_| vec![0]).collect();
        let r = max_min_rates(&[50.0], &routes);
        for &x in &r {
            assert!((x - 0.5).abs() < EPS);
        }
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn bad_route_panics() {
        let _ = max_min_rates(&[1.0], &[vec![3]]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn bad_capacity_panics() {
        let _ = max_min_rates(&[0.0], &[vec![0]]);
    }

    /// Invariant check used by both unit and property tests: the allocation
    /// never oversubscribes a link and every finite-rate flow has at least
    /// one saturated link on its route (Pareto optimality / bottleneck
    /// property).
    pub(crate) fn assert_max_min_invariants(
        capacities: &[f64],
        routes: &[Vec<usize>],
        rates: &[f64],
    ) {
        let tol = 1e-6;
        // 1. Feasibility.
        let mut load = vec![0.0; capacities.len()];
        for (f, route) in routes.iter().enumerate() {
            for &l in route {
                load[l] += rates[f];
            }
        }
        for (l, &cap) in capacities.iter().enumerate() {
            assert!(
                load[l] <= cap * (1.0 + tol) + tol,
                "link {l} oversubscribed: load={} cap={}",
                load[l],
                cap
            );
        }
        // 2. Bottleneck property: every flow has a saturated link on its
        //    route where it has a maximal rate among that link's flows.
        for (f, route) in routes.iter().enumerate() {
            if route.is_empty() {
                assert!(rates[f].is_infinite());
                continue;
            }
            let has_bottleneck = route.iter().any(|&l| {
                let saturated = load[l] >= capacities[l] * (1.0 - tol) - tol;
                let maximal = routes
                    .iter()
                    .enumerate()
                    .filter(|(_, r2)| r2.contains(&l))
                    .all(|(g, _)| rates[g] <= rates[f] + tol);
                saturated && maximal
            });
            assert!(
                has_bottleneck,
                "flow {f} (rate {}) has no bottleneck link",
                rates[f]
            );
        }
    }

    #[test]
    fn down_link_stalls_crossing_flows_and_frees_capacity() {
        // f0 crosses both links, f1 only link 1. Baseline: f0=5, f1=5.
        let mut s = MaxMinSolver::new(vec![10.0, 10.0]);
        let f0 = s.add_flow(&[0, 1]);
        let f1 = s.add_flow(&[1]);
        s.solve();
        assert!((s.rate(f0) - 5.0).abs() < EPS);
        assert!((s.rate(f1) - 5.0).abs() < EPS);
        // Link 0 down: f0 stalls at exactly 0.0 and stops consuming link 1,
        // so f1 gets the whole link.
        s.set_link_down(0);
        assert!(s.is_link_down(0));
        assert_eq!(s.links_down(), 1);
        assert!(s.flow_stalled(f0));
        assert!(!s.flow_stalled(f1));
        s.solve();
        assert_eq!(s.rate(f0).to_bits(), 0.0f64.to_bits());
        assert!((s.rate(f1) - 10.0).abs() < EPS);
        // Recovery restores the baseline allocation bit-for-bit.
        s.set_link_up(0);
        assert_eq!(s.links_down(), 0);
        assert!(!s.flow_stalled(f0));
        s.solve();
        let spec = max_min_rates(&[10.0, 10.0], &[vec![0, 1], vec![1]]);
        assert_eq!(s.rate(f0).to_bits(), spec[0].to_bits());
        assert_eq!(s.rate(f1).to_bits(), spec[1].to_bits());
    }

    #[test]
    fn flow_added_on_down_link_starts_stalled() {
        let mut s = MaxMinSolver::new(vec![10.0, 10.0]);
        s.set_link_down(0);
        let f0 = s.add_flow(&[0, 1]);
        let f1 = s.add_flow(&[1]);
        assert!(s.flow_stalled(f0));
        s.solve();
        assert_eq!(s.rate(f0).to_bits(), 0.0f64.to_bits());
        assert!((s.rate(f1) - 10.0).abs() < EPS);
        s.set_link_up(0);
        s.solve();
        assert!((s.rate(f0) - 5.0).abs() < EPS);
        assert!((s.rate(f1) - 5.0).abs() < EPS);
    }

    #[test]
    fn overlapping_outages_stall_until_last_recovery() {
        let mut s = MaxMinSolver::new(vec![10.0, 10.0, 10.0]);
        let f = s.add_flow(&[0, 1, 2]);
        s.set_link_down(0);
        s.set_link_down(2);
        assert!(s.flow_stalled(f));
        s.set_link_up(0);
        assert!(s.flow_stalled(f), "still stalled by link 2");
        s.set_link_up(2);
        assert!(!s.flow_stalled(f));
        s.solve();
        assert!((s.rate(f) - 10.0).abs() < EPS);
    }

    #[test]
    fn degraded_link_matches_fresh_solve_at_scaled_capacity() {
        let mut s = MaxMinSolver::new(vec![8.0, 32.0]);
        let f0 = s.add_flow(&[0, 1]);
        let f1 = s.add_flow(&[1]);
        // Degrade link 1 to a quarter: it becomes the bottleneck.
        s.set_link_capacity_factor(1, 0.25);
        s.solve();
        let spec = max_min_rates(&[8.0, 8.0], &[vec![0, 1], vec![1]]);
        assert_eq!(s.rate(f0).to_bits(), spec[0].to_bits());
        assert_eq!(s.rate(f1).to_bits(), spec[1].to_bits());
        // Factor 1.0 restores the configured capacity exactly.
        s.set_link_capacity_factor(1, 1.0);
        s.solve();
        let spec = max_min_rates(&[8.0, 32.0], &[vec![0, 1], vec![1]]);
        assert_eq!(s.rate(f0).to_bits(), spec[0].to_bits());
        assert_eq!(s.rate(f1).to_bits(), spec[1].to_bits());
    }

    #[test]
    #[should_panic(expected = "already down")]
    fn double_down_panics() {
        let mut s = MaxMinSolver::new(vec![1.0]);
        s.set_link_down(0);
        s.set_link_down(0);
    }

    #[test]
    #[should_panic(expected = "is not down")]
    fn up_without_down_panics() {
        let mut s = MaxMinSolver::new(vec![1.0]);
        s.set_link_up(0);
    }

    #[test]
    #[should_panic(expected = "degrade factor")]
    fn bad_degrade_factor_panics() {
        let mut s = MaxMinSolver::new(vec![1.0]);
        s.set_link_capacity_factor(0, 0.0);
    }

    #[test]
    fn invariants_on_examples() {
        let cases: Vec<(Vec<f64>, Vec<Vec<usize>>)> = vec![
            (vec![10.0], vec![vec![0], vec![0], vec![0]]),
            (vec![10.0, 10.0], vec![vec![0, 1], vec![0], vec![1]]),
            (vec![2.0, 10.0], vec![vec![0, 1], vec![1]]),
            (
                vec![5.0, 7.0, 3.0],
                vec![vec![0, 1, 2], vec![0], vec![1], vec![2], vec![0, 2]],
            ),
        ];
        for (caps, routes) in cases {
            let rates = max_min_rates(&caps, &routes);
            assert_max_min_invariants(&caps, &routes, &rates);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::tests::assert_max_min_invariants;
    use super::*;
    use proptest::prelude::*;

    fn arb_case() -> impl Strategy<Value = (Vec<f64>, Vec<Vec<usize>>)> {
        // 1..8 links with capacities 0.5..100, 0..12 flows crossing random
        // non-empty subsets.
        (1usize..8).prop_flat_map(|n_links| {
            let caps = proptest::collection::vec(0.5f64..100.0, n_links);
            let route = proptest::collection::btree_set(0..n_links, 1..=n_links)
                .prop_map(|s| s.into_iter().collect::<Vec<_>>());
            let flows = proptest::collection::vec(route, 0..12);
            (caps, flows)
        })
    }

    proptest! {
        #[test]
        fn max_min_invariants_hold((caps, routes) in arb_case()) {
            let rates = max_min_rates(&caps, &routes);
            assert_max_min_invariants(&caps, &routes, &rates);
        }

        #[test]
        fn rates_positive((caps, routes) in arb_case()) {
            let rates = max_min_rates(&caps, &routes);
            for (f, r) in rates.iter().enumerate() {
                prop_assert!(*r > 0.0, "flow {} got non-positive rate {}", f, r);
            }
        }

        #[test]
        fn deterministic((caps, routes) in arb_case()) {
            let a = max_min_rates(&caps, &routes);
            let b = max_min_rates(&caps, &routes);
            prop_assert_eq!(a, b);
        }

        /// The hot-path solver is bit-identical to the specification —
        /// compared via `to_bits`, not approximately — across flow
        /// add/remove churn on one registration state (stale-state
        /// hazards: slot reuse, touched-list maintenance, scratch reuse).
        #[test]
        fn solver_matches_spec_bitwise(
            (caps, routes) in (2usize..8).prop_flat_map(|n_links| {
                let caps = proptest::collection::vec(0.5f64..100.0, n_links);
                let route = proptest::collection::btree_set(0..n_links, 1..=n_links)
                    .prop_map(|s| s.into_iter().collect::<Vec<_>>());
                let flows = proptest::collection::vec(route, 0..24);
                (caps, flows)
            }),
            removals in proptest::collection::vec(0u8..2, 24),
        ) {
            let mut solver = MaxMinSolver::new(caps.clone());
            let mut live: Vec<(u32, Vec<usize>)> = Vec::new();
            let check = |solver: &mut MaxMinSolver, live: &[(u32, Vec<usize>)]| {
                let spec_routes: Vec<Vec<usize>> =
                    live.iter().map(|(_, r)| r.clone()).collect();
                let spec = max_min_rates(&caps, &spec_routes);
                solver.solve();
                for (f, (slot, _)) in live.iter().enumerate() {
                    let got = solver.rate(*slot);
                    assert_eq!(
                        spec[f].to_bits(),
                        got.to_bits(),
                        "flow {f} differs: {} vs {got}",
                        spec[f]
                    );
                }
            };
            for (i, route) in routes.iter().enumerate() {
                let slot = solver.add_flow(route);
                live.push((slot, route.clone()));
                check(&mut solver, &live);
                // Interleave removals so slots get reused mid-sequence.
                if removals[i % removals.len()] == 1 && !live.is_empty() {
                    let victim = i % live.len();
                    let (slot, _) = live.remove(victim);
                    solver.remove_flow(slot);
                    check(&mut solver, &live);
                }
            }
            while let Some((slot, _)) = live.pop() {
                solver.remove_flow(slot);
                check(&mut solver, &live);
            }
        }

        /// Under link down/up and degrade churn, the solver stays
        /// bit-identical to a fresh specification solve over the
        /// *effective* capacities and the *non-stalled* flows, and every
        /// stalled flow reads exactly `0.0`.
        #[test]
        fn solver_matches_spec_under_link_faults(
            (caps, routes) in (2usize..8).prop_flat_map(|n_links| {
                let caps = proptest::collection::vec(0.5f64..100.0, n_links);
                let route = proptest::collection::btree_set(0..n_links, 1..=n_links)
                    .prop_map(|s| s.into_iter().collect::<Vec<_>>());
                let flows = proptest::collection::vec(route, 1..16);
                (caps, flows)
            }),
            // Per step: (target link selector, op): 0 = toggle down/up,
            // 1 = degrade to 0.25, 2 = restore factor 1.0.
            ops in proptest::collection::vec((0usize..8, 0u8..3), 1..24),
        ) {
            let n_links = caps.len();
            let mut solver = MaxMinSolver::new(caps.clone());
            let mut live: Vec<(u32, Vec<usize>)> = Vec::new();
            let mut down = vec![false; n_links];
            let mut eff = caps.clone();
            let check = |solver: &mut MaxMinSolver,
                         live: &[(u32, Vec<usize>)],
                         down: &[bool],
                         eff: &[f64]| {
                let stalled =
                    |r: &[usize]| r.iter().any(|&l| down[l]);
                let spec_routes: Vec<Vec<usize>> = live
                    .iter()
                    .filter(|(_, r)| !stalled(r))
                    .map(|(_, r)| r.clone())
                    .collect();
                let spec = max_min_rates(eff, &spec_routes);
                solver.solve();
                let mut k = 0;
                for (slot, route) in live {
                    let got = solver.rate(*slot);
                    if stalled(route) {
                        assert!(solver.flow_stalled(*slot));
                        assert_eq!(got.to_bits(), 0.0f64.to_bits());
                    } else {
                        assert!(!solver.flow_stalled(*slot));
                        assert_eq!(
                            spec[k].to_bits(),
                            got.to_bits(),
                            "slot {slot} differs: {} vs {got}",
                            spec[k]
                        );
                        k += 1;
                    }
                }
            };
            // Interleave flow registration with link-state churn.
            let mut ri = 0;
            for &(sel, op) in &ops {
                if ri < routes.len() {
                    let slot = solver.add_flow(&routes[ri]);
                    live.push((slot, routes[ri].clone()));
                    ri += 1;
                }
                let l = sel % n_links;
                match op {
                    0 => {
                        if down[l] {
                            solver.set_link_up(l);
                            down[l] = false;
                        } else {
                            solver.set_link_down(l);
                            down[l] = true;
                        }
                    }
                    1 => {
                        solver.set_link_capacity_factor(l, 0.25);
                        eff[l] = caps[l] * 0.25;
                    }
                    _ => {
                        solver.set_link_capacity_factor(l, 1.0);
                        eff[l] = caps[l];
                    }
                }
                check(&mut solver, &live, &down, &eff);
            }
            // Drain everything with some links still faulted.
            while let Some((slot, _)) = live.pop() {
                solver.remove_flow(slot);
                check(&mut solver, &live, &down, &eff);
            }
        }
    }
}
