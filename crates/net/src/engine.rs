//! Stateful fluid network engine.
//!
//! [`NetSim`] tracks the set of active flows and their max–min fair rates.
//! The owner drives it with wall-clock-style calls:
//!
//! 1. [`NetSim::start_flow`] / [`NetSim::cancel_flow`] / [`NetSim::finish_flow`]
//!    mutate the flow set (each call first advances fluid state to `now`,
//!    then marks the allocation dirty — rates are recomputed lazily at the
//!    next observation point),
//! 2. [`NetSim::next_completion`] reports when the earliest active flow will
//!    finish if nothing else changes — the owner schedules exactly one DES
//!    event for that instant and re-queries after every mutation.
//!
//! A flow's lifetime is `latency + bytes / rate(t)`: the latency phase
//! elapses first (propagation), then bytes drain at the flow's current
//! max–min rate.

use std::collections::BTreeMap;

use gridsched_des::{SimDuration, SimTime};
use gridsched_telemetry::{Counter, Histogram, Telemetry};
use gridsched_topology::EdgeId;

use crate::fair::MaxMinSolver;

/// Identifier of an active (or completed) flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(u64);

impl FlowId {
    /// The flow's creation ordinal, a deterministic run-stable word (used
    /// by the engine's determinism digest to encode flow events).
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

#[derive(Debug, Clone)]
struct FlowState {
    /// The flow's registration slot in the max–min solver.
    slot: u32,
    remaining_latency_s: f64,
    remaining_bytes: f64,
    rate_bps: f64,
}

impl FlowState {
    /// Absolute completion time if the rate never changes again.
    fn eta(&self, now: SimTime) -> SimTime {
        if self.rate_bps.is_infinite() {
            return now + SimDuration::from_secs(self.remaining_latency_s);
        }
        if self.rate_bps <= 0.0 {
            return SimTime::FAR_FUTURE;
        }
        now + SimDuration::from_secs(
            self.remaining_latency_s + self.remaining_bytes / self.rate_bps,
        )
    }
}

/// Fluid network simulator with max–min fair bandwidth sharing.
///
/// Rates are recomputed **lazily**: flow mutations only mark the
/// allocation dirty, and the recompute runs at the next point the rates
/// are observable — a time advance that must drain bytes, or a
/// [`NetSim::next_completion`] / [`NetSim::rate_of`] query. Same-instant
/// mutation bursts (a batch finishing one fetch and starting the next)
/// therefore cost one recompute instead of one per mutation, with
/// bit-identical results: rates are a pure function of the flow set and
/// the drained state, both of which are unchanged while the clock stands
/// still.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct NetSim {
    /// Active flows, ordered by id — the deterministic recompute order
    /// (previously achieved by sorting a key snapshot per recompute).
    flows: BTreeMap<u64, FlowState>,
    next_id: u64,
    last_update: SimTime,
    /// Whether the flow set changed since the last rate recompute.
    dirty: bool,
    /// Earliest completion cached by the last recompute; invalidated by
    /// time advances (the ETA expression would be re-evaluated from
    /// drained state with different rounding).
    cached_next: Option<(SimTime, FlowId)>,
    /// Incremental max–min solver: flows register on start and deregister
    /// on finish/cancel, so a recompute rebuilds nothing.
    solver: MaxMinSolver,
    /// Total bytes fully delivered by finished flows (stats).
    bytes_delivered: f64,
    /// Number of flows finished (stats).
    flows_finished: u64,
    /// `net.solver.recomputes` — lazy rate recomputations actually run
    /// (inert unless telemetry is attached).
    recomputes: Counter,
    /// `net.solver.touched_flows` — flows visited per recompute.
    touched_flows: Histogram,
}

impl NetSim {
    /// Creates an engine over links with the given capacities
    /// (bytes/second), indexed by [`EdgeId::index`].
    ///
    /// # Panics
    ///
    /// Panics if any capacity is non-positive or non-finite.
    #[must_use]
    pub fn new(capacities: Vec<f64>) -> Self {
        NetSim {
            solver: MaxMinSolver::new(capacities),
            flows: BTreeMap::new(),
            next_id: 0,
            last_update: SimTime::ZERO,
            dirty: false,
            cached_next: None,
            bytes_delivered: 0.0,
            flows_finished: 0,
            recomputes: Counter::disabled(),
            touched_flows: Histogram::disabled(),
        }
    }

    /// Installs hot-path instrument handles (recompute count, flows
    /// touched per recompute). Recording through inert handles — the
    /// default — is a no-op; attaching never changes any rate or ETA.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.recomputes = telemetry.counter("net.solver.recomputes");
        self.touched_flows = telemetry.histogram("net.solver.touched_flows");
    }

    /// Number of links crossed by at least one active flow.
    #[must_use]
    pub fn busy_links(&self) -> usize {
        self.solver.busy_links()
    }

    /// Total number of links in the topology.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.solver.link_count()
    }

    /// Marks `link` down at `now`: every flow crossing it stalls at rate
    /// `0.0` (its ETA becomes unreachable — it never surfaces from
    /// [`NetSim::next_completion`]) and stops consuming capacity on the
    /// rest of its route. Fluid state is drained up to `now` first, so
    /// bytes moved before the outage stay moved.
    ///
    /// # Panics
    ///
    /// Panics if `now` is before the engine clock, the link is unknown, or
    /// the link is already down.
    pub fn set_link_down(&mut self, now: SimTime, link: EdgeId) {
        self.advance_to(now);
        self.solver.set_link_down(link.index());
        self.mark_dirty();
    }

    /// Brings `link` back up at `now`; flows stalled solely by it resume
    /// draining from their surviving byte counts.
    ///
    /// # Panics
    ///
    /// Panics if `now` is before the engine clock, the link is unknown, or
    /// the link is not down.
    pub fn set_link_up(&mut self, now: SimTime, link: EdgeId) {
        self.advance_to(now);
        self.solver.set_link_up(link.index());
        self.mark_dirty();
    }

    /// Sets `link`'s effective capacity to `base × factor` at `now` (a
    /// degraded-bandwidth window; `1.0` restores the configured capacity
    /// exactly).
    ///
    /// # Panics
    ///
    /// Panics if `now` is before the engine clock, the link is unknown, or
    /// `factor` is outside `(0, 1]`.
    pub fn set_link_capacity_factor(&mut self, now: SimTime, link: EdgeId, factor: f64) {
        self.advance_to(now);
        self.solver.set_link_capacity_factor(link.index(), factor);
        self.mark_dirty();
    }

    /// Number of links currently down.
    #[must_use]
    pub fn links_down(&self) -> usize {
        self.solver.links_down()
    }

    /// Whether `link` is currently down.
    #[must_use]
    pub fn is_link_down(&self, link: EdgeId) -> bool {
        self.solver.is_link_down(link.index())
    }

    /// Whether every link on `route` is up — the reachability test the
    /// transfer-resilience layer uses when picking a failover source.
    #[must_use]
    pub fn route_up(&self, route: &[EdgeId]) -> bool {
        route.iter().all(|e| !self.solver.is_link_down(e.index()))
    }

    /// Whether an active flow is stalled by a down link on its route.
    /// `None` if the flow is unknown/already done.
    #[must_use]
    pub fn flow_stalled(&self, id: FlowId) -> Option<bool> {
        self.flows
            .get(&id.0)
            .map(|f| self.solver.flow_stalled(f.slot))
    }

    /// An optimistic fair-share rate estimate over `route` — the minimum
    /// over its links of `capacity / non-stalled crossing flows`. A lower
    /// bound on the max–min rate any flow on that route receives, so
    /// `bytes / estimate` upper-bounds its transfer time: the basis the
    /// transfer guard uses to size timeouts. `+∞` for an empty route.
    #[must_use]
    pub fn fair_share_estimate(&self, route: &[EdgeId]) -> f64 {
        let links: Vec<usize> = route.iter().map(|e| e.index()).collect();
        self.solver.fair_share_estimate(&links)
    }

    /// Starts a flow of `bytes` bytes across `route` with propagation
    /// latency `latency_s`, at time `now`. Returns its id.
    ///
    /// An empty route means both endpoints are co-located: the flow
    /// completes after `latency_s` alone.
    ///
    /// # Panics
    ///
    /// Panics if `now` is before the engine's last update (time must be
    /// driven monotonically), `bytes` is negative/NaN, or the route
    /// references unknown links.
    pub fn start_flow(
        &mut self,
        now: SimTime,
        route: &[EdgeId],
        bytes: f64,
        latency_s: f64,
    ) -> FlowId {
        assert!(bytes >= 0.0 && bytes.is_finite(), "bad flow size: {bytes}");
        assert!(
            latency_s >= 0.0 && latency_s.is_finite(),
            "bad latency: {latency_s}"
        );
        self.advance_to(now);
        let id = self.next_id;
        self.next_id += 1;
        let route_idx: Vec<usize> = route.iter().map(|e| e.index()).collect();
        let slot = self.solver.add_flow(&route_idx);
        self.flows.insert(
            id,
            FlowState {
                slot,
                remaining_latency_s: latency_s,
                remaining_bytes: bytes,
                rate_bps: 0.0,
            },
        );
        self.mark_dirty();
        FlowId(id)
    }

    /// Cancels an active flow (e.g. a replicated task got cancelled while
    /// its input transfer was in flight). Returns the bytes that had *not*
    /// yet been delivered, or `None` if the flow was unknown/already done.
    pub fn cancel_flow(&mut self, now: SimTime, id: FlowId) -> Option<f64> {
        self.advance_to(now);
        let state = self.flows.remove(&id.0)?;
        self.solver.remove_flow(state.slot);
        self.mark_dirty();
        Some(state.remaining_bytes)
    }

    /// Marks the flow finished at `now`. The engine checks that the flow is
    /// indeed (numerically) drained — the owner must call this exactly at
    /// the instant reported by [`NetSim::next_completion`].
    ///
    /// # Panics
    ///
    /// Panics if the flow is unknown or demonstrably unfinished (more than
    /// a relative `1e-6` of its bytes left).
    pub fn finish_flow(&mut self, now: SimTime, id: FlowId) {
        self.advance_to(now);
        let state = self
            .flows
            .remove(&id.0)
            .unwrap_or_else(|| panic!("finish_flow: unknown flow {id:?}"));
        self.solver.remove_flow(state.slot);
        let slack = state.remaining_bytes.max(0.0);
        assert!(
            state.remaining_latency_s <= 1e-9 && slack <= 1e-3,
            "finish_flow called on unfinished flow {id:?}: {slack} bytes / {}s latency left",
            state.remaining_latency_s
        );
        self.bytes_delivered += slack; // account the numerically-lost tail
        self.flows_finished += 1;
        self.mark_dirty();
    }

    /// The earliest `(time, flow)` completion among active flows, assuming
    /// no further changes. `None` when no flows are active.
    pub fn next_completion(&mut self) -> Option<(SimTime, FlowId)> {
        if self.dirty {
            self.recompute_rates();
        }
        if self.cached_next.is_none() {
            self.cached_next = self.scan_next_completion();
        }
        self.cached_next
    }

    /// Current max–min rate of a flow in bytes/second, if active.
    pub fn rate_of(&mut self, id: FlowId) -> Option<f64> {
        if self.dirty {
            self.recompute_rates();
        }
        self.flows.get(&id.0).map(|f| f.rate_bps)
    }

    fn mark_dirty(&mut self) {
        self.dirty = true;
        self.cached_next = None;
    }

    fn scan_next_completion(&self) -> Option<(SimTime, FlowId)> {
        debug_assert!(!self.dirty, "scan over unreconciled rates");
        self.flows
            .iter()
            .map(|(&id, f)| (f.eta(self.last_update), FlowId(id)))
            // Stalled flows (down link on the route) have no reachable
            // completion — they wait for recovery, cancellation, or a
            // transfer-guard timeout, never for a completion event.
            .filter(|&(eta, _)| eta < SimTime::FAR_FUTURE)
            // Deterministic tie-break on flow id.
            .min_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)))
    }

    /// Number of active flows.
    #[must_use]
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes delivered by finished flows.
    #[must_use]
    pub fn bytes_delivered(&self) -> f64 {
        self.bytes_delivered
    }

    /// Number of finished flows.
    #[must_use]
    pub fn flows_finished(&self) -> u64 {
        self.flows_finished
    }

    /// Advances fluid state (latency count-down, byte drain) to `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` is in the past relative to the engine clock.
    fn advance_to(&mut self, now: SimTime) {
        assert!(
            now >= self.last_update,
            "NetSim driven backwards: now={now:?} last={:?}",
            self.last_update
        );
        let mut dt = (now - self.last_update).as_secs();
        self.last_update = now;
        if dt == 0.0 || self.flows.is_empty() {
            return;
        }
        // Rates deferred by a same-instant mutation burst become
        // observable now: the interval being drained starts at the burst's
        // instant, so reconciling here drains with exactly the rates an
        // eager recompute would have assigned then.
        if self.dirty {
            self.recompute_rates();
        }
        self.cached_next = None;
        for f in self.flows.values_mut() {
            let mut local_dt = dt;
            if f.remaining_latency_s > 0.0 {
                let consumed = f.remaining_latency_s.min(local_dt);
                f.remaining_latency_s -= consumed;
                local_dt -= consumed;
            }
            if f.remaining_latency_s <= 0.0 && f.rate_bps.is_infinite() {
                // Co-located endpoints: the payload arrives with the
                // latency edge itself.
                self.bytes_delivered += f.remaining_bytes;
                f.remaining_bytes = 0.0;
            } else if local_dt > 0.0 {
                let drained = (f.rate_bps * local_dt).min(f.remaining_bytes);
                f.remaining_bytes -= drained;
                self.bytes_delivered += drained;
            }
        }
        // `dt` consumed entirely; silence unused warning on the var reuse.
        dt = 0.0;
        let _ = dt;
    }

    /// Recomputes the max–min fair allocation for the current flow set
    /// (ascending flow id — the `BTreeMap` iteration order — matching the
    /// sorted-snapshot order of the original implementation), without
    /// allocating.
    fn recompute_rates(&mut self) {
        self.dirty = false;
        if self.flows.is_empty() {
            return;
        }
        self.recomputes.incr();
        self.touched_flows.record(self.flows.len() as u64);
        self.solver.solve();
        // Fold the earliest-completion search into the readback pass: the
        // same (eta, id) minimum the scan would take, over the same
        // ascending-id order, computed while the flows are already being
        // visited.
        let now = self.last_update;
        let mut next: Option<(SimTime, FlowId)> = None;
        for (&id, state) in self.flows.iter_mut() {
            state.rate_bps = self.solver.rate(state.slot);
            let eta = state.eta(now);
            // Stalled flows never surface as a completion (see
            // `scan_next_completion`).
            if eta < SimTime::FAR_FUTURE && next.is_none_or(|(t, fid)| (eta, FlowId(id)) < (t, fid))
            {
                next = Some((eta, FlowId(id)));
            }
        }
        self.cached_next = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn e(i: u32) -> EdgeId {
        EdgeId(i)
    }

    #[test]
    fn single_flow_latency_plus_transfer() {
        let mut net = NetSim::new(vec![10.0]);
        let f = net.start_flow(SimTime::ZERO, &[e(0)], 100.0, 2.0);
        let (eta, id) = net.next_completion().unwrap();
        assert_eq!(id, f);
        assert!((eta.as_secs() - 12.0).abs() < 1e-9);
        net.finish_flow(eta, f);
        assert_eq!(net.active_flows(), 0);
        assert_eq!(net.flows_finished(), 1);
        assert!((net.bytes_delivered() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_flow_is_pure_latency() {
        let mut net = NetSim::new(vec![10.0]);
        let f = net.start_flow(SimTime::ZERO, &[e(0)], 0.0, 1.5);
        let (eta, _) = net.next_completion().unwrap();
        assert!((eta.as_secs() - 1.5).abs() < 1e-12);
        net.finish_flow(eta, f);
    }

    #[test]
    fn empty_route_completes_after_latency() {
        let mut net = NetSim::new(vec![10.0]);
        let f = net.start_flow(SimTime::ZERO, &[], 1e9, 0.5);
        let (eta, _) = net.next_completion().unwrap();
        assert!((eta.as_secs() - 0.5).abs() < 1e-12);
        net.finish_flow(eta, f);
    }

    #[test]
    fn two_flows_slow_each_other() {
        // Link 10 B/s. Flow A: 100 bytes at t=0. Flow B: 100 bytes at t=0.
        // Both get 5 B/s → finish at t=20 (no latency).
        let mut net = NetSim::new(vec![10.0]);
        let _a = net.start_flow(SimTime::ZERO, &[e(0)], 100.0, 0.0);
        let _b = net.start_flow(SimTime::ZERO, &[e(0)], 100.0, 0.0);
        let (eta, first) = net.next_completion().unwrap();
        assert!((eta.as_secs() - 20.0).abs() < 1e-9);
        net.finish_flow(eta, first);
        // The survivor now gets the full link and finishes at the same time
        // (both had identical progress).
        let (eta2, second) = net.next_completion().unwrap();
        assert!((eta2.as_secs() - 20.0).abs() < 1e-9);
        assert_ne!(first, second);
        net.finish_flow(eta2, second);
    }

    #[test]
    fn late_arrival_shares_bandwidth() {
        // Link 10 B/s. A starts at t=0 with 100 bytes (eta 10). B arrives at
        // t=5 with 100 bytes; from then on both run at 5 B/s.
        // A has 50 bytes left → finishes at t=15. B finishes at 5 + latency
        // 0 + (50/5 then 50/10) — after A leaves, B speeds back up:
        // at t=15 B has 100-50=50 left, full rate 10 → t=20.
        let mut net = NetSim::new(vec![10.0]);
        let a = net.start_flow(SimTime::ZERO, &[e(0)], 100.0, 0.0);
        let b = net.start_flow(t(5.0), &[e(0)], 100.0, 0.0);
        let (eta_a, id) = net.next_completion().unwrap();
        assert_eq!(id, a);
        assert!((eta_a.as_secs() - 15.0).abs() < 1e-9, "eta_a={eta_a}");
        net.finish_flow(eta_a, a);
        let (eta_b, id) = net.next_completion().unwrap();
        assert_eq!(id, b);
        assert!((eta_b.as_secs() - 20.0).abs() < 1e-9, "eta_b={eta_b}");
        net.finish_flow(eta_b, b);
        assert!((net.bytes_delivered() - 200.0).abs() < 1e-6);
    }

    #[test]
    fn cancel_frees_bandwidth() {
        let mut net = NetSim::new(vec![10.0]);
        let a = net.start_flow(SimTime::ZERO, &[e(0)], 100.0, 0.0);
        let b = net.start_flow(SimTime::ZERO, &[e(0)], 100.0, 0.0);
        // At t=4 cancel B (it delivered 20 of its bytes).
        let left = net.cancel_flow(t(4.0), b).unwrap();
        assert!((left - 80.0).abs() < 1e-9);
        // A has 80 left at rate 10 → eta t=12.
        let (eta, id) = net.next_completion().unwrap();
        assert_eq!(id, a);
        assert!((eta.as_secs() - 12.0).abs() < 1e-9);
        assert_eq!(net.cancel_flow(t(12.0), b), None, "double cancel");
    }

    #[test]
    fn multi_link_route_bottleneck() {
        // Route over links of 10 and 4 → rate 4.
        let mut net = NetSim::new(vec![10.0, 4.0]);
        let f = net.start_flow(SimTime::ZERO, &[e(0), e(1)], 40.0, 0.0);
        let (eta, _) = net.next_completion().unwrap();
        assert!((eta.as_secs() - 10.0).abs() < 1e-9);
        net.finish_flow(eta, f);
    }

    #[test]
    fn latency_phase_does_not_drain_bytes() {
        let mut net = NetSim::new(vec![10.0]);
        let f = net.start_flow(SimTime::ZERO, &[e(0)], 100.0, 5.0);
        // Probe state mid-latency by starting/cancelling another flow.
        let probe = net.start_flow(t(3.0), &[e(0)], 1.0, 0.0);
        net.cancel_flow(t(3.5), probe);
        let (eta, _) = net.next_completion().unwrap();
        // 5s latency, plus bytes drained at 5 B/s between 3.0 and 3.5 is
        // *not* true — latency phase: bytes untouched until t=5.
        // After t=5 the flow is alone at 10 B/s → eta = 15.
        assert!((eta.as_secs() - 15.0).abs() < 1e-9, "eta={eta}");
        net.finish_flow(eta, f);
    }

    #[test]
    #[should_panic(expected = "unfinished flow")]
    fn finish_early_panics() {
        let mut net = NetSim::new(vec![10.0]);
        let f = net.start_flow(SimTime::ZERO, &[e(0)], 100.0, 0.0);
        net.finish_flow(t(1.0), f);
    }

    #[test]
    #[should_panic(expected = "driven backwards")]
    fn time_backwards_panics() {
        let mut net = NetSim::new(vec![10.0]);
        let _ = net.start_flow(t(5.0), &[e(0)], 1.0, 0.0);
        let _ = net.start_flow(t(4.0), &[e(0)], 1.0, 0.0);
    }

    #[test]
    fn deterministic_tie_break_on_simultaneous_completion() {
        let mut net = NetSim::new(vec![10.0]);
        let a = net.start_flow(SimTime::ZERO, &[e(0)], 50.0, 0.0);
        let _b = net.start_flow(SimTime::ZERO, &[e(0)], 50.0, 0.0);
        let (_, id) = net.next_completion().unwrap();
        assert_eq!(id, a, "lowest flow id wins ties");
    }

    #[test]
    fn outage_stalls_flow_and_preserves_partial_bytes() {
        let mut net = NetSim::new(vec![10.0]);
        let f = net.start_flow(SimTime::ZERO, &[e(0)], 100.0, 0.0);
        // 40 bytes delivered by t=4, then the link fails.
        net.set_link_down(t(4.0), e(0));
        assert_eq!(net.links_down(), 1);
        assert!(net.is_link_down(e(0)));
        assert!(!net.route_up(&[e(0)]));
        assert_eq!(net.flow_stalled(f), Some(true));
        // A stalled flow has no reachable completion.
        assert_eq!(net.next_completion(), None);
        assert_eq!(net.rate_of(f), Some(0.0));
        // Recovery at t=30: 60 bytes left at 10 B/s → eta t=36.
        net.set_link_up(t(30.0), e(0));
        assert_eq!(net.flow_stalled(f), Some(false));
        let (eta, id) = net.next_completion().unwrap();
        assert_eq!(id, f);
        assert!((eta.as_secs() - 36.0).abs() < 1e-9, "eta={eta}");
        net.finish_flow(eta, f);
        assert!((net.bytes_delivered() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn cancel_during_outage_returns_undelivered_bytes() {
        // The resume primitive: cancel a stalled flow and restart only the
        // remaining bytes on another route.
        let mut net = NetSim::new(vec![10.0, 10.0]);
        let f = net.start_flow(SimTime::ZERO, &[e(0)], 100.0, 0.0);
        net.set_link_down(t(4.0), e(0));
        let left = net.cancel_flow(t(9.0), f).unwrap();
        assert!((left - 60.0).abs() < 1e-9, "left={left}");
        // Resume on the other link at the remaining size.
        assert!(net.route_up(&[e(1)]));
        let r = net.start_flow(t(9.0), &[e(1)], left, 0.0);
        let (eta, id) = net.next_completion().unwrap();
        assert_eq!(id, r);
        assert!((eta.as_secs() - 15.0).abs() < 1e-9, "eta={eta}");
        net.finish_flow(eta, r);
        assert!((net.bytes_delivered() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn degraded_window_slows_then_restores() {
        let mut net = NetSim::new(vec![10.0]);
        let f = net.start_flow(SimTime::ZERO, &[e(0)], 100.0, 0.0);
        // Half capacity from t=2: 20 bytes done, 80 left at 5 B/s.
        net.set_link_capacity_factor(t(2.0), e(0), 0.5);
        let (eta, _) = net.next_completion().unwrap();
        assert!((eta.as_secs() - 18.0).abs() < 1e-9, "eta={eta}");
        // Restore at t=10: 40 more drained (5 B/s × 8 s), 40 left at 10.
        net.set_link_capacity_factor(t(10.0), e(0), 1.0);
        let (eta, _) = net.next_completion().unwrap();
        assert!((eta.as_secs() - 14.0).abs() < 1e-9, "eta={eta}");
        net.finish_flow(eta, f);
        assert!((net.bytes_delivered() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn unaffected_flows_complete_during_outage() {
        let mut net = NetSim::new(vec![10.0, 10.0]);
        let stalled = net.start_flow(SimTime::ZERO, &[e(0)], 100.0, 0.0);
        let healthy = net.start_flow(SimTime::ZERO, &[e(1)], 100.0, 0.0);
        net.set_link_down(SimTime::ZERO, e(0));
        let (eta, id) = net.next_completion().unwrap();
        assert_eq!(id, healthy);
        assert!((eta.as_secs() - 10.0).abs() < 1e-9);
        net.finish_flow(eta, healthy);
        assert_eq!(net.next_completion(), None);
        let left = net.cancel_flow(eta, stalled).unwrap();
        assert!((left - 100.0).abs() < 1e-9, "no bytes moved on a down link");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random schedule of flow starts over a small topology; drive the
    /// engine to completion and check conservation: delivered bytes equal
    /// the sum of all flow sizes.
    fn drive_to_completion(caps: Vec<f64>, starts: Vec<(f64, Vec<usize>, f64, f64)>) -> (f64, f64) {
        let mut net = NetSim::new(caps.clone());
        let total: f64 = starts.iter().map(|s| s.2).sum();
        let mut pending = starts;
        pending.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut now = SimTime::ZERO;
        let mut idx = 0;
        loop {
            let next_start = pending.get(idx).map(|s| SimTime::from_secs(s.0));
            let next_done = net.next_completion();
            match (next_start, next_done) {
                (Some(ts), Some((td, fid))) => {
                    if ts <= td {
                        let (at, route, bytes, lat) = pending[idx].clone();
                        let _ = at;
                        now = ts;
                        let route: Vec<EdgeId> = route.iter().map(|&l| EdgeId(l as u32)).collect();
                        net.start_flow(now, &route, bytes, lat);
                        idx += 1;
                    } else {
                        now = td;
                        net.finish_flow(now, fid);
                    }
                }
                (Some(ts), None) => {
                    let (_, route, bytes, lat) = pending[idx].clone();
                    now = ts;
                    let route: Vec<EdgeId> = route.iter().map(|&l| EdgeId(l as u32)).collect();
                    net.start_flow(now, &route, bytes, lat);
                    idx += 1;
                }
                (None, Some((td, fid))) => {
                    now = td;
                    net.finish_flow(now, fid);
                }
                (None, None) => break,
            }
        }
        let _ = now;
        (total, net.bytes_delivered())
    }

    #[allow(clippy::type_complexity)]
    fn arb_starts() -> impl Strategy<Value = (Vec<f64>, Vec<(f64, Vec<usize>, f64, f64)>)> {
        (2usize..5).prop_flat_map(|n_links| {
            let caps = proptest::collection::vec(1.0f64..50.0, n_links);
            let start = (
                0.0f64..100.0,
                proptest::collection::btree_set(0..n_links, 1..=n_links)
                    .prop_map(|s| s.into_iter().collect::<Vec<_>>()),
                0.0f64..500.0,
                0.0f64..2.0,
            )
                .prop_map(|(t, r, b, l)| (t, r, b, l));
            let starts = proptest::collection::vec(start, 1..10);
            (caps, starts)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn bytes_are_conserved((caps, starts) in arb_starts()) {
            let (total, delivered) = drive_to_completion(caps, starts);
            prop_assert!((total - delivered).abs() <= total * 1e-6 + 1e-3,
                "total={} delivered={}", total, delivered);
        }
    }
}
