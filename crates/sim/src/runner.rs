//! Experiment runner: replicate runs over topologies and average.
//!
//! "Each experiment is performed with 5 different topologies and the
//! results are averaged over the 5 runs" (§5.2). [`run_averaged`] runs one
//! simulation per topology seed — in parallel, one thread per seed — and
//! returns the element-wise average report.

use crate::config::SimConfig;
use crate::engine::GridSim;
use crate::metrics::{MetricsReport, SiteMetrics};

/// One (x, report) pair of a sweep, e.g. (capacity = 3000, averaged
/// metrics).
#[derive(Debug, Clone)]
pub struct ExperimentPoint {
    /// Algorithm label (paper naming).
    pub strategy: String,
    /// The swept parameter's value at this point.
    pub x: f64,
    /// Averaged metrics at this point.
    pub report: MetricsReport,
}

/// Per-replicate extrema of the key scalar metrics — the spread around the
/// mean that [`run_averaged`] alone would discard. A mean makespan is only
/// as trustworthy as the band the replicates actually span.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportSpread {
    /// How many replicates the extrema cover.
    pub replicates: usize,
    /// (min, max) makespan in minutes.
    pub makespan_minutes: (f64, f64),
    /// (min, max) file-transfer count.
    pub file_transfers: (u64, u64),
    /// (min, max) bytes on the wire.
    pub bytes_transferred: (f64, f64),
    /// (min, max) events dispatched.
    pub events_dispatched: (u64, u64),
    /// (min, max) replicas launched.
    pub replicas_launched: (u64, u64),
    /// (min, max) tasks fault-orphaned.
    pub tasks_lost: (u64, u64),
    /// (min, max) wasted compute-seconds.
    pub wasted_compute_s: (f64, f64),
}

/// Runs `base` once per topology seed (in parallel) and averages.
///
/// The master seed is varied together with the topology seed so worker
/// speeds differ per replicate, as they would per Tiers topology in the
/// paper's setup.
///
/// # Panics
///
/// Panics if `topology_seeds` is empty or a worker thread panics.
#[must_use]
pub fn run_averaged(base: &SimConfig, topology_seeds: &[u64]) -> MetricsReport {
    average_reports(&run_replicates(base, topology_seeds))
}

/// Like [`run_averaged`], but also returns the per-replicate extrema.
///
/// # Panics
///
/// Panics if `topology_seeds` is empty or a worker thread panics.
#[must_use]
pub fn run_averaged_with_spread(
    base: &SimConfig,
    topology_seeds: &[u64],
) -> (MetricsReport, ReportSpread) {
    let reports = run_replicates(base, topology_seeds);
    (average_reports(&reports), report_spread(&reports))
}

fn run_replicates(base: &SimConfig, topology_seeds: &[u64]) -> Vec<MetricsReport> {
    assert!(!topology_seeds.is_empty(), "need at least one replicate");
    let multi = topology_seeds.len() > 1;
    std::thread::scope(|scope| {
        let handles: Vec<_> = topology_seeds
            .iter()
            .map(|&ts| {
                let mut config = base
                    .clone()
                    .with_topology_seed(ts)
                    .with_seed(base.seed.wrapping_add(ts));
                // Replicates run concurrently: with several seeds writing,
                // a shared output path would be a data race on disk —
                // suffix per seed so every replicate keeps its own files.
                if multi {
                    config.suffix_outputs_for_seed(ts);
                }
                scope.spawn(move || GridSim::new(config).run())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("simulation thread panicked"))
            .collect()
    })
}

fn minmax_u64(mut values: impl Iterator<Item = u64>) -> (u64, u64) {
    let first = values.next().expect("at least one report");
    values.fold((first, first), |(lo, hi), v| (lo.min(v), hi.max(v)))
}

fn minmax_f64(mut values: impl Iterator<Item = f64>) -> (f64, f64) {
    let first = values.next().expect("at least one report");
    values.fold((first, first), |(lo, hi), v| (lo.min(v), hi.max(v)))
}

/// Element-wise (min, max) extrema over several reports.
///
/// # Panics
///
/// Panics if `reports` is empty.
#[must_use]
pub fn report_spread(reports: &[MetricsReport]) -> ReportSpread {
    assert!(
        !reports.is_empty(),
        "cannot take the spread of zero reports"
    );
    ReportSpread {
        replicates: reports.len(),
        makespan_minutes: minmax_f64(reports.iter().map(|r| r.makespan_minutes)),
        file_transfers: minmax_u64(reports.iter().map(|r| r.file_transfers)),
        bytes_transferred: minmax_f64(reports.iter().map(|r| r.bytes_transferred)),
        events_dispatched: minmax_u64(reports.iter().map(|r| r.events_dispatched)),
        replicas_launched: minmax_u64(reports.iter().map(|r| r.replicas_launched)),
        tasks_lost: minmax_u64(reports.iter().map(|r| r.tasks_lost)),
        wasted_compute_s: minmax_f64(reports.iter().map(|r| r.wasted_compute_s)),
    }
}

fn avg_u64(values: impl Iterator<Item = u64>, n: usize) -> u64 {
    let sum: u64 = values.sum();
    ((sum as f64) / n as f64).round() as u64
}

fn avg_f64(values: impl Iterator<Item = f64>, n: usize) -> f64 {
    values.sum::<f64>() / n as f64
}

/// Element-wise average of several reports (config taken from the first).
///
/// # Panics
///
/// Panics if `reports` is empty or their per-site vectors disagree in
/// length.
#[must_use]
pub fn average_reports(reports: &[MetricsReport]) -> MetricsReport {
    assert!(!reports.is_empty(), "cannot average zero reports");
    let n = reports.len();
    let sites = reports[0].per_site.len();
    for r in reports {
        assert_eq!(r.per_site.len(), sites, "mismatched site counts");
    }
    let per_site: Vec<SiteMetrics> = (0..sites)
        .map(|s| SiteMetrics {
            requests: avg_u64(reports.iter().map(|r| r.per_site[s].requests), n),
            waiting_time_s: avg_f64(reports.iter().map(|r| r.per_site[s].waiting_time_s), n),
            transfer_time_s: avg_f64(reports.iter().map(|r| r.per_site[s].transfer_time_s), n),
            file_transfers: avg_u64(reports.iter().map(|r| r.per_site[s].file_transfers), n),
            bytes_transferred: avg_f64(reports.iter().map(|r| r.per_site[s].bytes_transferred), n),
            tasks_started: avg_u64(reports.iter().map(|r| r.per_site[s].tasks_started), n),
            evictions: avg_u64(reports.iter().map(|r| r.per_site[s].evictions), n),
            worker_downtime_s: avg_f64(reports.iter().map(|r| r.per_site[s].worker_downtime_s), n),
            server_downtime_s: avg_f64(reports.iter().map(|r| r.per_site[s].server_downtime_s), n),
            files_lost: avg_u64(reports.iter().map(|r| r.per_site[s].files_lost), n),
        })
        .collect();
    MetricsReport {
        config: reports[0].config.clone(),
        makespan_minutes: avg_f64(reports.iter().map(|r| r.makespan_minutes), n),
        file_transfers: avg_u64(reports.iter().map(|r| r.file_transfers), n),
        bytes_transferred: avg_f64(reports.iter().map(|r| r.bytes_transferred), n),
        cancelled_bytes: avg_f64(reports.iter().map(|r| r.cancelled_bytes), n),
        tasks_completed: avg_u64(reports.iter().map(|r| r.tasks_completed), n),
        replicas_launched: avg_u64(reports.iter().map(|r| r.replicas_launched), n),
        replicas_cancelled: avg_u64(reports.iter().map(|r| r.replicas_cancelled), n),
        replicas_completed: avg_u64(reports.iter().map(|r| r.replicas_completed), n),
        primaries_cancelled: avg_u64(reports.iter().map(|r| r.primaries_cancelled), n),
        replicas_lost: avg_u64(reports.iter().map(|r| r.replicas_lost), n),
        per_site,
        replication_pushes: avg_u64(reports.iter().map(|r| r.replication_pushes), n),
        replication_bytes: avg_f64(reports.iter().map(|r| r.replication_bytes), n),
        events_dispatched: avg_u64(reports.iter().map(|r| r.events_dispatched), n),
        total_evictions: avg_u64(reports.iter().map(|r| r.total_evictions), n),
        overflow_inserts: avg_u64(reports.iter().map(|r| r.overflow_inserts), n),
        tasks_lost: avg_u64(reports.iter().map(|r| r.tasks_lost), n),
        re_executions: avg_u64(reports.iter().map(|r| r.re_executions), n),
        worker_crashes: avg_u64(reports.iter().map(|r| r.worker_crashes), n),
        server_outages: avg_u64(reports.iter().map(|r| r.server_outages), n),
        files_lost: avg_u64(reports.iter().map(|r| r.files_lost), n),
        wasted_compute_s: avg_f64(reports.iter().map(|r| r.wasted_compute_s), n),
        checkpoints_written: avg_u64(reports.iter().map(|r| r.checkpoints_written), n),
        checkpoints_lost: avg_u64(reports.iter().map(|r| r.checkpoints_lost), n),
        checkpoint_restores: avg_u64(reports.iter().map(|r| r.checkpoint_restores), n),
        checkpoint_overhead_s: avg_f64(reports.iter().map(|r| r.checkpoint_overhead_s), n),
        work_saved_s: avg_f64(reports.iter().map(|r| r.work_saved_s), n),
        link_outages: avg_u64(reports.iter().map(|r| r.link_outages), n),
        link_downtime_s: avg_f64(reports.iter().map(|r| r.link_downtime_s), n),
        xfer_timeouts: avg_u64(reports.iter().map(|r| r.xfer_timeouts), n),
        xfer_retries: avg_u64(reports.iter().map(|r| r.xfer_retries), n),
        xfer_failovers: avg_u64(reports.iter().map(|r| r.xfer_failovers), n),
        xfer_bytes_resumed: avg_f64(reports.iter().map(|r| r.xfer_bytes_resumed), n),
        xfer_bytes_retransmitted: avg_f64(reports.iter().map(|r| r.xfer_bytes_retransmitted), n),
        flows_started: avg_u64(reports.iter().map(|r| r.flows_started), n),
        flows_completed: avg_u64(reports.iter().map(|r| r.flows_completed), n),
        flows_aborted: avg_u64(reports.iter().map(|r| r.flows_aborted), n),
        flows_retrying: avg_u64(reports.iter().map(|r| r.flows_retrying), n),
        flows_requeued: avg_u64(reports.iter().map(|r| r.flows_requeued), n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use gridsched_core::StrategyKind;
    use gridsched_workload::coadd::CoaddConfig;

    #[test]
    fn averaging_is_elementwise() {
        let wl = Arc::new(CoaddConfig::small(0).generate());
        let cfg = SimConfig::paper(wl, StrategyKind::Rest)
            .with_sites(2)
            .with_seed(0);
        let a = GridSim::new(cfg.clone().with_topology_seed(0)).run();
        let b = GridSim::new(cfg.with_topology_seed(1)).run();
        let avg = average_reports(&[a.clone(), b.clone()]);
        assert!(
            (avg.makespan_minutes - (a.makespan_minutes + b.makespan_minutes) / 2.0).abs() < 1e-9
        );
        assert_eq!(avg.tasks_completed, 200);
    }

    #[test]
    fn run_averaged_parallel() {
        let wl = Arc::new(CoaddConfig::small(0).generate());
        let cfg = SimConfig::paper(wl, StrategyKind::Rest2).with_sites(2);
        let avg = run_averaged(&cfg, &[0, 1, 2]);
        assert_eq!(avg.tasks_completed, 200);
        assert!(avg.makespan_minutes > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one replicate")]
    fn empty_seed_list_panics() {
        let wl = Arc::new(CoaddConfig::small(0).generate());
        let cfg = SimConfig::paper(wl, StrategyKind::Rest);
        let _ = run_averaged(&cfg, &[]);
    }

    #[test]
    fn spread_brackets_the_mean() {
        let wl = Arc::new(CoaddConfig::small(0).generate());
        let cfg = SimConfig::paper(wl, StrategyKind::Rest)
            .with_sites(2)
            .with_seed(0);
        let (avg, spread) = run_averaged_with_spread(&cfg, &[0, 1, 2]);
        assert_eq!(spread.replicates, 3);
        let (lo, hi) = spread.makespan_minutes;
        assert!(lo <= avg.makespan_minutes && avg.makespan_minutes <= hi);
        assert!(lo > 0.0);
        let (flo, fhi) = spread.file_transfers;
        assert!(flo <= avg.file_transfers || avg.file_transfers <= fhi);
        assert!(flo <= fhi);
        // Distinct topologies should actually disagree somewhere.
        assert!(
            spread.makespan_minutes.0 < spread.makespan_minutes.1,
            "three topologies with identical makespans is vanishingly unlikely"
        );
        // Single-replicate spread degenerates to the report itself.
        let one = report_spread(&[GridSim::new(cfg.clone().with_topology_seed(0)).run()]);
        assert_eq!(one.makespan_minutes.0, one.makespan_minutes.1);
    }
}
