//! Ablation — extra baselines beyond the paper's six algorithms.
//!
//! Adds the classic **workqueue** (FIFO pull, no locality — the paper's
//! §2.3 example of worker-centric scheduling) and a data-aware
//! **XSufferage**-style heuristic (the comparator storage affinity was
//! originally evaluated against, §6/[5]) to the default-configuration
//! comparison. Expected ordering: transfer-aware worker-centric metrics ≤
//! xsufferage ≤ storage-affinity/overlap ≪ workqueue on transfers.
//!
//! Also sweeps storage affinity's **replica throttle** over the
//! (replica-cap, site-replica-budget) grid — the makespan-vs-wasted-compute
//! Pareto trade the fixed `perf_scale` throttle point cannot show — and
//! marks the **knee**: the configuration minimising the summed normalised
//! distance to the utopia point (fastest makespan, least speculative
//! waste). Run with 4 workers per site so queue imbalance actually drives
//! replication (the paper's 1-worker default only replicates at the drain
//! tail). This is the measurement basis for the adaptive-throttle
//! follow-up: an adaptive policy should land at (or beat) the knee without
//! being told the caps.

use gridsched_bench::{check, fmt, run, Cli, Table};
use gridsched_core::{ReplicaThrottle, StrategyKind};
use gridsched_sim::SimConfig;

fn main() {
    let cli = Cli::parse();
    let workload = cli.workload();

    let strategies = [
        StrategyKind::Rest2,
        StrategyKind::Combined2,
        StrategyKind::Sufferage,
        StrategyKind::StorageAffinity,
        StrategyKind::Overlap,
        StrategyKind::Workqueue,
    ];
    let mut table = Table::new(
        "Ablation: baseline face-off (Table 1 defaults)",
        &["algorithm", "makespan_min", "file_transfers", "bytes_GB"],
    );
    let mut measured = Vec::new();
    for strategy in strategies {
        let config = SimConfig::paper(workload.clone(), strategy);
        let r = run(&cli, &config);
        table.push_row(vec![
            strategy.to_string(),
            fmt(r.makespan_minutes, 0),
            r.file_transfers.to_string(),
            fmt(r.bytes_transferred / 1e9, 1),
        ]);
        measured.push((strategy, r.makespan_minutes, r.file_transfers));
    }
    table.emit(&cli, "ablation_baselines");

    let get = |k: StrategyKind| measured.iter().find(|(s, _, _)| *s == k).expect("measured");
    check(
        &cli,
        "workqueue (no locality) is the worst on transfers",
        measured
            .iter()
            .all(|(s, _, t)| *s == StrategyKind::Workqueue || *t < get(StrategyKind::Workqueue).2),
    );
    check(
        &cli,
        "transfer-aware worker-centric beats xsufferage on makespan",
        get(StrategyKind::Rest2).1 < get(StrategyKind::Sufferage).1,
    );
    check(
        &cli,
        "xsufferage (demand-driven, data-aware) beats workqueue",
        get(StrategyKind::Sufferage).1 < get(StrategyKind::Workqueue).1,
    );

    pareto_throttle_sweep(&cli, &workload);
}

/// The replica-throttle Pareto sweep: makespan vs wasted (speculative)
/// compute over the (cap, budget) grid, knee marked in the table.
fn pareto_throttle_sweep(cli: &Cli, workload: &std::sync::Arc<gridsched_workload::Workload>) {
    let caps: &[Option<u32>] = &[None, Some(1), Some(2), Some(4)];
    let budgets: &[Option<u32>] = &[None, Some(2), Some(8)];
    struct Point {
        label: String,
        makespan_min: f64,
        wasted_compute_s: f64,
        replicas_cancelled: u64,
    }
    let mut points: Vec<Point> = Vec::new();
    for &cap in caps {
        for &budget in budgets {
            let mut throttle = ReplicaThrottle::none();
            if let Some(c) = cap {
                throttle = throttle.with_replica_cap(c);
            }
            if let Some(b) = budget {
                throttle = throttle.with_site_budget(b);
            }
            let config = SimConfig::paper(workload.clone(), StrategyKind::StorageAffinity)
                .with_workers_per_site(4)
                .with_replica_throttle(throttle);
            let r = run(cli, &config);
            points.push(Point {
                label: throttle.summary(),
                makespan_min: r.makespan_minutes,
                wasted_compute_s: r.wasted_compute_s,
                replicas_cancelled: r.replicas_cancelled,
            });
        }
    }
    // Knee: minimal summed normalised distance to the utopia point. Both
    // axes are min-max normalised so neither unit dominates.
    let min_max = |vals: &mut dyn Iterator<Item = f64>| -> (f64, f64) {
        vals.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
            (lo.min(v), hi.max(v))
        })
    };
    let (m_lo, m_hi) = min_max(&mut points.iter().map(|p| p.makespan_min));
    let (w_lo, w_hi) = min_max(&mut points.iter().map(|p| p.wasted_compute_s));
    let norm = |v: f64, lo: f64, hi: f64| {
        if hi > lo {
            (v - lo) / (hi - lo)
        } else {
            0.0
        }
    };
    let knee = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let score = norm(p.makespan_min, m_lo, m_hi) + norm(p.wasted_compute_s, w_lo, w_hi);
            (i, score)
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("scores are finite"))
        .map(|(i, _)| i)
        .expect("non-empty sweep");

    let mut table = Table::new(
        "Ablation: replica-throttle Pareto sweep (storage affinity, 4 workers/site)",
        &[
            "throttle",
            "makespan_min",
            "wasted_compute_h",
            "replicas_cancelled",
            "knee",
        ],
    );
    for (i, p) in points.iter().enumerate() {
        table.push_row(vec![
            p.label.clone(),
            fmt(p.makespan_min, 0),
            fmt(p.wasted_compute_s / 3600.0, 1),
            p.replicas_cancelled.to_string(),
            if i == knee {
                "<-- knee".to_string()
            } else {
                String::new()
            },
        ]);
    }
    table.emit(cli, "ablation_throttle_pareto");

    let uncapped = &points[0];
    let kneep = &points[knee];
    println!(
        "knee: {} (makespan {:.0} min, wasted {:.1} h) vs uncapped (makespan {:.0} min, \
         wasted {:.1} h)",
        kneep.label,
        kneep.makespan_min,
        kneep.wasted_compute_s / 3600.0,
        uncapped.makespan_min,
        uncapped.wasted_compute_s / 3600.0,
    );
    check(
        cli,
        "some throttle setting cuts speculative waste below uncapped",
        points[1..]
            .iter()
            .any(|p| p.wasted_compute_s < uncapped.wasted_compute_s),
    );
    check(
        cli,
        "the knee stays within 10% of the best makespan",
        kneep.makespan_min <= m_lo * 1.10,
    );
}
