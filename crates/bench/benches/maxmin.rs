//! Max–min fair-share solver benchmark.
//!
//! The fluid network recomputes the allocation on every flow arrival and
//! departure, so the progressive-filling solver sits on the simulator's
//! hot path. Measured over link/flow counts bracketing the paper's setups
//! (90-site topologies ≈ 100 links; ≤ ~30 concurrent flows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gridsched_net::fair::max_min_rates;

fn random_case(links: usize, flows: usize, seed: u64) -> (Vec<f64>, Vec<Vec<usize>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let caps: Vec<f64> = (0..links).map(|_| rng.gen_range(1.0..100.0)).collect();
    let routes: Vec<Vec<usize>> = (0..flows)
        .map(|_| {
            let hops = rng.gen_range(2..6);
            let mut route: Vec<usize> = (0..hops).map(|_| rng.gen_range(0..links)).collect();
            route.sort_unstable();
            route.dedup();
            route
        })
        .collect();
    (caps, routes)
}

fn bench_maxmin(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_min_rates");
    for &(links, flows) in &[(20usize, 10usize), (100, 30), (100, 100), (400, 200)] {
        let (caps, routes) = random_case(links, flows, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{links}links_{flows}flows")),
            &(links, flows),
            |b, _| b.iter(|| std::hint::black_box(max_min_rates(&caps, &routes))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_maxmin);
criterion_main!(benches);
