//! Closed-loop fault-tolerance controllers.
//!
//! Every fault-tolerance knob elsewhere in the system is open-loop: the
//! replica throttle ships a hand-found Pareto knee, Young–Daly trusts a
//! *declared* MTBF, and placement learns of a flaky site only after losing
//! work to it. This module is the shared estimator/controller framework
//! that closes those loops from the failure process the engine actually
//! observes:
//!
//! * [`Ewma`] — exponentially-weighted moving averages over event-driven
//!   observations;
//! * [`InterarrivalTracker`] — per-entity failure interarrival estimation
//!   (feeds the self-tuning Young–Daly interval);
//! * [`AvailabilityTracker`] — integrated up-fraction per site (feeds the
//!   placement score);
//! * [`CapController`] — a hysteresis-guarded setpoint controller over the
//!   replica cap, driven by the observed replica cancel/complete ratio;
//! * [`CircuitBreaker`] — a closed/open/half-open state machine per site
//!   that stops dispatch into a crash storm and re-admits the site with
//!   timed probes;
//! * [`ControlPlane`] — the engine-facing bundle: it ingests the events
//!   the engine already emits (crash, recover, completion, tick) and
//!   produces [`ControlDirective`]s.
//!
//! Everything here is **deterministic and sim-time-driven**: no wall
//! clocks, no RNG. State changes only on engine events and on the
//! controller tick, which follows the same not-an-event discipline as the
//! probe sampler and digest fold (ticks fire *between* dispatched events
//! and never enter the event stream). With every loop disabled the plane
//! is never constructed and the simulation is byte-identical to the
//! uncontrolled engine — property-tested in
//! `tests/scheduler_equivalence.rs`.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Which closed loops are enabled, and the shared tick period.
///
/// `ControlConfig::none()` (the default) disables everything and is
/// byte-identical to the pre-control engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlConfig {
    /// Adaptive replica throttle: tune storage affinity's per-task replica
    /// cap from the observed cancel/complete ratio.
    pub adaptive_throttle: bool,
    /// Churn-aware placement: per-site availability scores exposed to the
    /// scheduler plus circuit breakers gating dispatch into crash storms.
    pub churn_placement: bool,
    /// Self-tuning Young–Daly: re-derive per-site checkpoint intervals
    /// from the observed failure interarrival process.
    pub adaptive_checkpoint: bool,
    /// Controller tick period in sim seconds.
    pub tick_s: f64,
}

impl Default for ControlConfig {
    fn default() -> Self {
        ControlConfig {
            adaptive_throttle: false,
            churn_placement: false,
            adaptive_checkpoint: false,
            tick_s: 60.0,
        }
    }
}

impl ControlConfig {
    /// All loops off — the open-loop engine.
    #[must_use]
    pub fn none() -> Self {
        ControlConfig::default()
    }

    /// Enables the adaptive replica throttle loop.
    #[must_use]
    pub fn with_adaptive_throttle(mut self) -> Self {
        self.adaptive_throttle = true;
        self
    }

    /// Enables churn-aware placement (availability scores + breakers).
    #[must_use]
    pub fn with_churn_placement(mut self) -> Self {
        self.churn_placement = true;
        self
    }

    /// Enables the self-tuning Young–Daly checkpoint loop.
    #[must_use]
    pub fn with_adaptive_checkpoint(mut self) -> Self {
        self.adaptive_checkpoint = true;
        self
    }

    /// Sets the controller tick period in sim seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `tick_s` is finite and positive.
    #[must_use]
    pub fn with_tick_s(mut self, tick_s: f64) -> Self {
        assert!(
            tick_s > 0.0 && tick_s.is_finite(),
            "control tick must be finite and positive"
        );
        self.tick_s = tick_s;
        self
    }

    /// Whether every loop is disabled (the plane need not exist).
    #[must_use]
    pub fn is_inert(&self) -> bool {
        !(self.adaptive_throttle || self.churn_placement || self.adaptive_checkpoint)
    }

    /// Human-readable summary (`"none"` when inert).
    #[must_use]
    pub fn summary(&self) -> String {
        if self.is_inert() {
            return "none".to_string();
        }
        let mut loops = Vec::new();
        if self.adaptive_throttle {
            loops.push("throttle");
        }
        if self.churn_placement {
            loops.push("placement");
        }
        if self.adaptive_checkpoint {
            loops.push("checkpoint");
        }
        format!("{} tick={}s", loops.join("+"), self.tick_s)
    }
}

/// An exponentially-weighted moving average over irregular observations.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// A fresh estimator; `alpha` is the weight of each new observation.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha` is in `(0, 1]`.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Folds one observation in. The first observation seeds the average.
    pub fn observe(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }

    /// The current estimate, if anything has been observed.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// Estimates the mean gap between successive events (failure
/// interarrival) for one entity via an EWMA over observed gaps.
#[derive(Debug, Clone)]
pub struct InterarrivalTracker {
    last_event_s: Option<f64>,
    gap: Ewma,
    gaps_observed: u64,
}

impl InterarrivalTracker {
    /// A fresh tracker with the given EWMA weight.
    #[must_use]
    pub fn new(alpha: f64) -> Self {
        InterarrivalTracker {
            last_event_s: None,
            gap: Ewma::new(alpha),
            gaps_observed: 0,
        }
    }

    /// Records an event at sim time `t_s`; the first event only anchors
    /// the clock, every later one contributes a gap.
    pub fn observe_event(&mut self, t_s: f64) {
        if let Some(last) = self.last_event_s {
            let gap = (t_s - last).max(0.0);
            self.gap.observe(gap);
            self.gaps_observed += 1;
        }
        self.last_event_s = Some(t_s);
    }

    /// EWMA of the interarrival gap, once at least one gap exists.
    #[must_use]
    pub fn mean_gap_s(&self) -> Option<f64> {
        self.gap.value()
    }

    /// How many gaps have been folded in.
    #[must_use]
    pub fn gaps_observed(&self) -> u64 {
        self.gaps_observed
    }
}

/// Integrates a site's up-worker fraction over sim time.
///
/// The engine reports every worker down/up transition; the tracker keeps
/// the exact integral of `up_workers / total_workers`, so
/// [`availability`](AvailabilityTracker::availability) is the fraction of
/// worker-seconds the site was up through time `t` — always in `[0, 1]`,
/// and exactly tiling with the downtime the metrics layer accounts.
#[derive(Debug, Clone)]
pub struct AvailabilityTracker {
    total: u32,
    up: u32,
    last_t_s: f64,
    up_worker_seconds: f64,
}

impl AvailabilityTracker {
    /// A site with `total` workers, all initially up.
    #[must_use]
    pub fn new(total: u32) -> Self {
        AvailabilityTracker {
            total,
            up: total,
            last_t_s: 0.0,
            up_worker_seconds: 0.0,
        }
    }

    fn advance(&mut self, t_s: f64) {
        let dt = (t_s - self.last_t_s).max(0.0);
        self.up_worker_seconds += dt * f64::from(self.up);
        self.last_t_s = t_s;
    }

    /// A worker at this site went down at sim time `t_s`.
    pub fn on_worker_down(&mut self, t_s: f64) {
        self.advance(t_s);
        self.up = self.up.saturating_sub(1);
    }

    /// A worker at this site came back up at sim time `t_s`.
    pub fn on_worker_up(&mut self, t_s: f64) {
        self.advance(t_s);
        self.up = (self.up + 1).min(self.total);
    }

    /// Fraction of worker-seconds up through `t_s`, clamped to `[0, 1]`
    /// (`1.0` before any time has elapsed).
    #[must_use]
    pub fn availability(&self, t_s: f64) -> f64 {
        let horizon = t_s.max(self.last_t_s);
        if horizon <= 0.0 || self.total == 0 {
            return 1.0;
        }
        let tail = (horizon - self.last_t_s) * f64::from(self.up);
        ((self.up_worker_seconds + tail) / (horizon * f64::from(self.total))).clamp(0.0, 1.0)
    }
}

/// A hysteresis-guarded setpoint controller over the replica cap.
///
/// Input: the EWMA of the per-tick replica *waste ratio*
/// `cancelled / (cancelled + completed)`. When the ratio sits above the
/// high-water mark most replicas are losing the race (speculation is
/// waste) and the cap ratchets down; below the low-water mark replicas
/// are mostly winning (speculation pays, e.g. under churn) and the cap
/// ratchets up. The dead band between the marks plus a cooldown of
/// several ticks between moves is the hysteresis that keeps the
/// controller from chattering around the setpoint.
///
/// Raises are additionally gated by *patience with exponential backoff*:
/// a raise needs `raise_patience` consecutive informative low-waste
/// windows, and a raise that promptly gets burned (the next move is a
/// lower) doubles the patience, up to [`Self::MAX_RAISE_PATIENCE`]. In a
/// steady high-contention regime the controller therefore rests at the
/// floor and probes upward only occasionally, instead of oscillating —
/// while consecutive successful raises reset the patience so genuinely
/// paying speculation (e.g. under churn) is re-trusted quickly. A fresh
/// raise is judged on its raw per-window waste for a few ticks
/// ([`Self::PROBE_JUDGE_TICKS`]) so a burned probe reverts after one
/// window instead of waiting for the smoothed estimate to catch up.
#[derive(Debug, Clone)]
pub struct CapController {
    cap: u32,
    min_cap: u32,
    max_cap: u32,
    high_water: f64,
    low_water: f64,
    cooldown_ticks: u32,
    ticks_since_change: u32,
    raise_patience: u32,
    low_streak: u32,
    last_move_was_raise: bool,
    waste: Ewma,
}

impl CapController {
    /// Starting cap for the adaptive throttle when the user set none.
    /// The floor: speculation must *prove* it pays (a patience cycle of
    /// clean windows) before any replica is admitted. Starting higher
    /// burns real compute in the cold-start dispatch burst, before the
    /// first window has even resolved.
    pub const DEFAULT_START_CAP: u32 = 1;
    /// Waste ratio above which the cap ratchets down.
    pub const HIGH_WATER: f64 = 0.40;
    /// Waste ratio below which the cap ratchets up.
    pub const LOW_WATER: f64 = 0.15;
    /// Ticks that must pass between cap moves.
    pub const COOLDOWN_TICKS: u32 = 2;
    /// Consecutive informative low-waste windows a raise needs initially.
    pub const BASE_RAISE_PATIENCE: u32 = 8;
    /// Backoff ceiling for the raise patience (burned probes double it).
    pub const MAX_RAISE_PATIENCE: u32 = 256;
    /// Ticks after a raise during which the probe is judged on its raw
    /// per-window waste rather than the smoothed estimate.
    pub const PROBE_JUDGE_TICKS: u32 = 4;

    /// A controller starting at `start_cap`, bounded to `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= min <= start <= max`.
    #[must_use]
    pub fn new(start_cap: u32, min_cap: u32, max_cap: u32) -> Self {
        assert!(
            min_cap >= 1 && min_cap <= start_cap && start_cap <= max_cap,
            "cap controller needs 1 <= min <= start <= max"
        );
        CapController {
            cap: start_cap,
            min_cap,
            max_cap,
            high_water: Self::HIGH_WATER,
            low_water: Self::LOW_WATER,
            cooldown_ticks: Self::COOLDOWN_TICKS,
            ticks_since_change: 0,
            raise_patience: Self::BASE_RAISE_PATIENCE,
            low_streak: 0,
            last_move_was_raise: false,
            waste: Ewma::new(0.4),
        }
    }

    /// The current cap.
    #[must_use]
    pub fn cap(&self) -> u32 {
        self.cap
    }

    /// The current waste-ratio estimate, once observed.
    #[must_use]
    pub fn waste_ratio(&self) -> Option<f64> {
        self.waste.value()
    }

    /// One controller tick: fold in the replicas cancelled/completed since
    /// the previous tick, apply the hysteresis rule, and return the new
    /// cap iff it moved.
    pub fn tick(&mut self, delta_cancelled: u64, delta_completed: u64) -> Option<u32> {
        let resolved = delta_cancelled + delta_completed;
        let informative = resolved > 0;
        #[allow(clippy::cast_precision_loss)]
        let raw = if informative {
            delta_cancelled as f64 / resolved as f64
        } else {
            0.0
        };
        if informative {
            // Observations only when replicas actually resolved: an idle
            // tick carries no information about speculation quality.
            self.waste.observe(raw);
        }
        self.ticks_since_change = self.ticks_since_change.saturating_add(1);
        let ratio = self.waste.value()?;
        if ratio >= self.low_water {
            self.low_streak = 0;
        } else if informative {
            self.low_streak = self.low_streak.saturating_add(1);
        }
        // A fresh raise is a *probe*, and a probe is judged on its own
        // windows, not the smoothed estimate: one raw window over the
        // high water reverts it immediately (skipping the cooldown),
        // bounding the cost of an exploratory raise to a single window
        // instead of the several it takes the EWMA to catch up.
        let probe_failed = self.last_move_was_raise
            && self.ticks_since_change <= Self::PROBE_JUDGE_TICKS
            && informative
            && raw > self.high_water;
        if !probe_failed && self.ticks_since_change < self.cooldown_ticks {
            return None;
        }
        let next = if probe_failed || ratio > self.high_water {
            self.cap.saturating_sub(1).max(self.min_cap)
        } else if ratio < self.low_water && self.low_streak >= self.raise_patience {
            (self.cap + 1).min(self.max_cap)
        } else {
            self.cap
        };
        if next == self.cap {
            return None;
        }
        if next < self.cap {
            if self.last_move_was_raise {
                // The probe got burned: back off before probing again.
                self.raise_patience = (self.raise_patience * 2).min(Self::MAX_RAISE_PATIENCE);
            }
            self.last_move_was_raise = false;
        } else {
            if self.last_move_was_raise {
                // Two raises in a row: speculation is paying — re-trust.
                self.raise_patience = Self::BASE_RAISE_PATIENCE;
            }
            self.last_move_was_raise = true;
        }
        self.cap = next;
        self.ticks_since_change = 0;
        self.low_streak = 0;
        Some(next)
    }
}

/// Circuit-breaker states, in the classic middleware sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: dispatch flows normally.
    Closed,
    /// Tripped: no dispatch to this site until the cooldown elapses.
    Open,
    /// Cooling down: dispatches are admitted again; a success closes the
    /// breaker, a failure re-opens it.
    HalfOpen,
}

/// A per-site circuit breaker over worker-crash events.
///
/// Trips [`Open`](BreakerState::Open) when `trip_threshold` crashes land
/// within a sliding `window_s`; transitions to
/// [`HalfOpen`](BreakerState::HalfOpen) on the first controller tick after
/// `cooldown_s`, at which point the engine re-admits the site's parked
/// workers. A completed task at the site closes the breaker; another
/// crash re-opens it for a fresh cooldown.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: BreakerState,
    window_s: f64,
    trip_threshold: u32,
    cooldown_s: f64,
    recent_failures_s: VecDeque<f64>,
    open_until_s: f64,
    half_open_since_s: f64,
}

impl CircuitBreaker {
    /// Crashes within the window needed to trip.
    pub const TRIP_THRESHOLD: u32 = 3;
    /// Sliding window over crash events, sim seconds.
    pub const WINDOW_S: f64 = 900.0;
    /// Open-state cooldown before a half-open probe, sim seconds.
    pub const COOLDOWN_S: f64 = 600.0;
    /// Half-open probation: a crash-free half-open breaker re-closes
    /// after this long. Without the bound, a site whose tasks run for
    /// hours would sit half-open (hair-trigger: one crash re-opens it)
    /// until its next completion, amplifying ordinary background churn
    /// into repeated full-cooldown parks.
    pub const PROBATION_S: f64 = 900.0;

    /// A closed breaker with the default thresholds.
    #[must_use]
    pub fn new() -> Self {
        CircuitBreaker {
            state: BreakerState::Closed,
            window_s: Self::WINDOW_S,
            trip_threshold: Self::TRIP_THRESHOLD,
            cooldown_s: Self::COOLDOWN_S,
            recent_failures_s: VecDeque::new(),
            open_until_s: 0.0,
            half_open_since_s: 0.0,
        }
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether dispatch to the site is currently blocked.
    #[must_use]
    pub fn is_open(&self) -> bool {
        self.state == BreakerState::Open
    }

    /// A worker at the site crashed at `t_s`. Returns `true` iff this
    /// crash tripped (or re-tripped) the breaker open.
    pub fn on_failure(&mut self, t_s: f64) -> bool {
        match self.state {
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                // The probe failed: straight back to open, fresh cooldown.
                self.state = BreakerState::Open;
                self.open_until_s = t_s + self.cooldown_s;
                self.recent_failures_s.clear();
                true
            }
            BreakerState::Closed => {
                self.recent_failures_s.push_back(t_s);
                while self
                    .recent_failures_s
                    .front()
                    .is_some_and(|&f| f < t_s - self.window_s)
                {
                    self.recent_failures_s.pop_front();
                }
                if self.recent_failures_s.len() >= self.trip_threshold as usize {
                    self.state = BreakerState::Open;
                    self.open_until_s = t_s + self.cooldown_s;
                    self.recent_failures_s.clear();
                    true
                } else {
                    false
                }
            }
        }
    }

    /// A task completed at the site at `t_s`. Returns `true` iff this
    /// success closed a half-open breaker.
    pub fn on_success(&mut self, _t_s: f64) -> bool {
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            self.recent_failures_s.clear();
            true
        } else {
            false
        }
    }

    /// Controller tick at `t_s`. Returns `true` iff the breaker moved
    /// from open to half-open (cooldown elapsed — time to probe). A
    /// half-open breaker that has stayed crash-free for
    /// [`Self::PROBATION_S`] re-closes silently on the same tick path.
    pub fn tick(&mut self, t_s: f64) -> bool {
        match self.state {
            BreakerState::Open if t_s >= self.open_until_s => {
                self.state = BreakerState::HalfOpen;
                self.half_open_since_s = t_s;
                true
            }
            BreakerState::HalfOpen if t_s >= self.half_open_since_s + Self::PROBATION_S => {
                self.state = BreakerState::Closed;
                self.recent_failures_s.clear();
                false
            }
            _ => false,
        }
    }

    /// The placement-score multiplier for this breaker state.
    #[must_use]
    pub fn score_factor(&self) -> f64 {
        match self.state {
            BreakerState::Closed => 1.0,
            BreakerState::HalfOpen => 0.5,
            BreakerState::Open => 0.0,
        }
    }
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new()
    }
}

/// A directive from the control plane to the scheduler, delivered through
/// [`Scheduler::on_control`](crate::scheduler::Scheduler::on_control).
#[derive(Debug, Clone, PartialEq)]
pub enum ControlDirective {
    /// The adaptive throttle moved the per-task replica cap.
    SetReplicaCap(u32),
    /// Fresh per-site placement scores in `[0, 1]` (availability ×
    /// breaker factor), indexed by site. A multiplier of 1.0 means
    /// "place freely"; 0.0 means the site is in a crash storm.
    SiteScores(Vec<f64>),
}

/// What a controller tick decided; the engine actuates each field.
#[derive(Debug, Clone, Default)]
pub struct TickOutcome {
    /// New replica cap, iff the throttle controller moved it.
    pub new_cap: Option<u32>,
    /// Whether the new cap is higher than the old one (re-admits parked
    /// capacity; the engine should wake parked workers).
    pub cap_raised: bool,
    /// Sites whose breaker went open → half-open this tick (wake a probe).
    pub half_opened: Vec<usize>,
    /// Fresh placement scores (present iff the placement loop is on).
    pub scores: Option<Vec<f64>>,
}

/// The engine-facing controller bundle: per-site estimators plus the
/// three loop controllers, driven by engine events and the shared tick.
pub struct ControlPlane {
    config: ControlConfig,
    workers_per_site: u32,
    cap_controller: Option<CapController>,
    prev_cancelled: u64,
    prev_completed: u64,
    availability: Vec<AvailabilityTracker>,
    breakers: Vec<CircuitBreaker>,
    site_scores: Vec<f64>,
    site_interarrival: Vec<InterarrivalTracker>,
    global_interarrival: InterarrivalTracker,
    estimator_updates: u64,
}

/// Minimum observed gaps before a site's own interarrival estimate is
/// trusted over the global one.
const SITE_MIN_GAPS: u64 = 3;
/// Minimum observed gaps before the global interarrival estimate is used.
const GLOBAL_MIN_GAPS: u64 = 2;
/// EWMA weight for interarrival gaps.
const GAP_ALPHA: f64 = 0.3;

impl ControlPlane {
    /// Builds the plane for a grid of `sites` × `workers_per_site`.
    ///
    /// `start_cap` seeds the throttle controller (the user's configured
    /// cap if they set one, [`CapController::DEFAULT_START_CAP`]
    /// otherwise); it is only consulted when the throttle loop is on.
    ///
    /// # Panics
    ///
    /// Panics if `config` is inert — the engine must not build a plane
    /// that can never act (the off state must stay byte-identical).
    #[must_use]
    pub fn new(config: ControlConfig, sites: usize, workers_per_site: u32, start_cap: u32) -> Self {
        assert!(
            !config.is_inert(),
            "control plane built with every loop disabled"
        );
        let cap_controller = config.adaptive_throttle.then(|| {
            let max = start_cap.max(CapController::DEFAULT_START_CAP * 2);
            CapController::new(start_cap, 1, max)
        });
        ControlPlane {
            config,
            workers_per_site,
            cap_controller,
            prev_cancelled: 0,
            prev_completed: 0,
            availability: (0..sites)
                .map(|_| AvailabilityTracker::new(workers_per_site))
                .collect(),
            breakers: (0..sites).map(|_| CircuitBreaker::new()).collect(),
            site_scores: vec![1.0; sites],
            site_interarrival: (0..sites)
                .map(|_| InterarrivalTracker::new(GAP_ALPHA))
                .collect(),
            global_interarrival: InterarrivalTracker::new(GAP_ALPHA),
            estimator_updates: 0,
        }
    }

    /// The configured loops.
    #[must_use]
    pub fn config(&self) -> &ControlConfig {
        &self.config
    }

    /// Whether the placement loop (scores + breakers) is on.
    #[must_use]
    pub fn placement_enabled(&self) -> bool {
        self.config.churn_placement
    }

    /// Whether the adaptive-checkpoint loop is on.
    #[must_use]
    pub fn checkpoint_enabled(&self) -> bool {
        self.config.adaptive_checkpoint
    }

    /// Total estimator observations folded in so far.
    #[must_use]
    pub fn estimator_updates(&self) -> u64 {
        self.estimator_updates
    }

    /// The current placement-score vector (last tick's, before that all
    /// ones). Scores are `availability × breaker_factor ∈ [0, 1]`.
    #[must_use]
    pub fn site_scores(&self) -> &[f64] {
        &self.site_scores
    }

    /// The breaker state for `site`.
    #[must_use]
    pub fn breaker_state(&self, site: usize) -> BreakerState {
        self.breakers[site].state()
    }

    /// Whether dispatch at `site` is blocked by an open breaker.
    /// Only gates when the placement loop is on.
    #[must_use]
    pub fn dispatch_blocked(&self, site: usize) -> bool {
        self.config.churn_placement && self.breakers[site].is_open()
    }

    /// A worker at `site` crashed at sim time `t_s`. Returns `true` iff
    /// the site's breaker tripped open on this crash.
    pub fn on_worker_crash(&mut self, site: usize, t_s: f64) -> bool {
        self.estimator_updates += 1;
        self.availability[site].on_worker_down(t_s);
        self.site_interarrival[site].observe_event(t_s);
        self.global_interarrival.observe_event(t_s);
        if self.config.churn_placement {
            self.breakers[site].on_failure(t_s)
        } else {
            false
        }
    }

    /// A worker at `site` recovered at sim time `t_s`.
    pub fn on_worker_recover(&mut self, site: usize, t_s: f64) {
        self.estimator_updates += 1;
        self.availability[site].on_worker_up(t_s);
    }

    /// A task completed at `site` at sim time `t_s`. Returns `true` iff
    /// this success closed a half-open breaker (the engine should wake
    /// the site's parked workers).
    pub fn on_site_success(&mut self, site: usize, t_s: f64) -> bool {
        if self.config.churn_placement {
            self.breakers[site].on_success(t_s)
        } else {
            false
        }
    }

    /// Estimated per-worker MTBF at `site` in sim seconds, from the
    /// observed crash interarrival process. A site-local estimate needs
    /// [`SITE_MIN_GAPS`] gaps; before that the global process (scaled to
    /// one worker) stands in; before *that*, `None` — the consumer keeps
    /// its bootstrap behaviour (no checkpoints until failures are seen).
    #[must_use]
    pub fn site_worker_mtbf_s(&self, site: usize) -> Option<f64> {
        let local = &self.site_interarrival[site];
        if local.gaps_observed() >= SITE_MIN_GAPS {
            return local
                .mean_gap_s()
                .map(|g| g * f64::from(self.workers_per_site));
        }
        if self.global_interarrival.gaps_observed() >= GLOBAL_MIN_GAPS {
            let total_workers = self.workers_per_site as usize * self.availability.len();
            #[allow(clippy::cast_precision_loss)]
            return self
                .global_interarrival
                .mean_gap_s()
                .map(|g| g * total_workers as f64);
        }
        None
    }

    /// The throttle controller's current waste-ratio estimate.
    #[must_use]
    pub fn waste_ratio(&self) -> Option<f64> {
        self.cap_controller
            .as_ref()
            .and_then(CapController::waste_ratio)
    }

    /// One controller tick at sim time `t_s`. `replicas_cancelled` /
    /// `replicas_completed` are the engine's *cumulative* counters (the
    /// plane differences them itself).
    pub fn tick(
        &mut self,
        t_s: f64,
        replicas_cancelled: u64,
        replicas_completed: u64,
    ) -> TickOutcome {
        let mut out = TickOutcome::default();
        if let Some(ctl) = self.cap_controller.as_mut() {
            let old_cap = ctl.cap();
            let d_cancel = replicas_cancelled.saturating_sub(self.prev_cancelled);
            let d_complete = replicas_completed.saturating_sub(self.prev_completed);
            self.prev_cancelled = replicas_cancelled;
            self.prev_completed = replicas_completed;
            if let Some(new_cap) = ctl.tick(d_cancel, d_complete) {
                out.new_cap = Some(new_cap);
                out.cap_raised = new_cap > old_cap;
            }
        }
        if self.config.churn_placement {
            for (site, breaker) in self.breakers.iter_mut().enumerate() {
                if breaker.tick(t_s) {
                    out.half_opened.push(site);
                }
            }
            for (site, tracker) in self.availability.iter().enumerate() {
                self.site_scores[site] =
                    tracker.availability(t_s) * self.breakers[site].score_factor();
            }
            out.scores = Some(self.site_scores.clone());
        }
        out
    }
}

impl fmt::Debug for ControlPlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ControlPlane")
            .field("config", &self.config)
            .field("estimator_updates", &self.estimator_updates)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_summary_and_inertness() {
        assert!(ControlConfig::none().is_inert());
        assert_eq!(ControlConfig::none().summary(), "none");
        let c = ControlConfig::none()
            .with_adaptive_throttle()
            .with_churn_placement()
            .with_adaptive_checkpoint()
            .with_tick_s(30.0);
        assert!(!c.is_inert());
        assert_eq!(c.summary(), "throttle+placement+checkpoint tick=30s");
        assert_eq!(
            ControlConfig::none().with_churn_placement().summary(),
            "placement tick=60s"
        );
    }

    #[test]
    #[should_panic(expected = "control tick must be finite and positive")]
    fn zero_tick_panics() {
        let _ = ControlConfig::none().with_tick_s(0.0);
    }

    #[test]
    fn ewma_seeds_and_converges() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.observe(10.0);
        assert_eq!(e.value(), Some(10.0));
        e.observe(0.0);
        assert_eq!(e.value(), Some(5.0));
        for _ in 0..64 {
            e.observe(2.0);
        }
        assert!((e.value().unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn interarrival_needs_two_events() {
        let mut t = InterarrivalTracker::new(0.5);
        t.observe_event(100.0);
        assert_eq!(t.mean_gap_s(), None);
        t.observe_event(160.0);
        assert_eq!(t.mean_gap_s(), Some(60.0));
        assert_eq!(t.gaps_observed(), 1);
        t.observe_event(220.0);
        assert_eq!(t.mean_gap_s(), Some(60.0));
    }

    #[test]
    fn availability_integrates_and_stays_in_unit_interval() {
        let mut a = AvailabilityTracker::new(4);
        assert_eq!(a.availability(0.0), 1.0);
        assert_eq!(a.availability(100.0), 1.0);
        a.on_worker_down(100.0); // 3/4 up from t=100
                                 // Exact check: 100s fully up (400 worker-s) + 100s at 3 up (300) over 4*200.
        assert!((a.availability(200.0) - 700.0 / 800.0).abs() < 1e-9);
        a.on_worker_down(200.0);
        a.on_worker_down(200.0);
        a.on_worker_down(200.0); // all down
        assert!((a.availability(400.0) - 700.0 / 1600.0).abs() < 1e-9);
        a.on_worker_up(400.0);
        for t in [0.0, 1.0, 500.0, 1e6] {
            let v = a.availability(t);
            assert!((0.0..=1.0).contains(&v), "availability {v} out of range");
        }
    }

    #[test]
    fn cap_controller_ratchets_down_under_waste_and_up_when_paying() {
        let mut c = CapController::new(4, 1, 8);
        assert_eq!(c.cap(), 4);
        // Heavy waste: ratio 0.9 each tick — should ratchet to the floor.
        let mut moves = Vec::new();
        for _ in 0..12 {
            if let Some(cap) = c.tick(9, 1) {
                moves.push(cap);
            }
        }
        assert_eq!(c.cap(), 1);
        assert_eq!(moves, vec![3, 2, 1]);
        // Speculation paying off: ratio 0.0 — ratchets back up, capped.
        // Each raise waits out the patience (consecutive clean raises
        // keep it at the base), so the climb takes several windows.
        for _ in 0..120 {
            c.tick(0, 10);
        }
        assert_eq!(c.cap(), 8);
    }

    #[test]
    fn cap_controller_burned_probe_reverts_in_one_window_and_backs_off() {
        let mut c = CapController::new(1, 1, 8);
        // Clean low-waste windows until the controller probes upward.
        let mut ticks_to_first_raise = 0;
        while c.cap() == 1 {
            c.tick(0, 10);
            ticks_to_first_raise += 1;
            assert!(ticks_to_first_raise < 50, "controller never probed");
        }
        assert_eq!(c.cap(), 2);
        // The probe burns: one raw window over the high water reverts it
        // immediately, without waiting out the cooldown or the EWMA.
        assert_eq!(c.tick(9, 1), Some(1));
        assert_eq!(c.cap(), 1);
        // Backoff doubled the patience: the next probe takes longer.
        let mut ticks_to_second_raise = 0;
        while c.cap() == 1 {
            c.tick(0, 10);
            ticks_to_second_raise += 1;
            assert!(ticks_to_second_raise < 200, "controller never re-probed");
        }
        assert!(
            ticks_to_second_raise > ticks_to_first_raise,
            "burned probe must back off: {ticks_to_second_raise} <= {ticks_to_first_raise}"
        );
    }

    #[test]
    fn cap_controller_dead_band_holds_and_idle_ticks_are_silent() {
        let mut c = CapController::new(2, 1, 8);
        // Ratio 0.25 sits inside the dead band: no movement, ever.
        for _ in 0..20 {
            assert_eq!(c.tick(1, 3), None);
        }
        assert_eq!(c.cap(), 2);
        // Idle ticks (nothing resolved) never move the cap either.
        let mut c = CapController::new(4, 1, 8);
        for _ in 0..20 {
            assert_eq!(c.tick(0, 0), None);
        }
        assert_eq!(c.cap(), 4);
    }

    #[test]
    fn breaker_trips_probes_and_recloses() {
        let mut b = CircuitBreaker::new();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.on_failure(100.0));
        assert!(!b.on_failure(110.0));
        assert!(b.on_failure(120.0)); // third within the window: trip
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.is_open());
        // Cooldown not yet elapsed.
        assert!(!b.tick(120.0 + CircuitBreaker::COOLDOWN_S - 1.0));
        assert!(b.tick(120.0 + CircuitBreaker::COOLDOWN_S));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.is_open()); // probes admitted
                               // Probe crashes: straight back to open.
        assert!(b.on_failure(800.0));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.tick(800.0 + CircuitBreaker::COOLDOWN_S));
        // Probe succeeds: closed, window reset.
        assert!(b.on_success(1500.0));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.on_failure(1501.0));
        assert!(!b.on_failure(1502.0));
    }

    #[test]
    fn breaker_probation_recloses_quiet_half_open() {
        let mut b = CircuitBreaker::new();
        assert!(!b.on_failure(100.0));
        assert!(!b.on_failure(110.0));
        assert!(b.on_failure(120.0));
        let half_open_at = 120.0 + CircuitBreaker::COOLDOWN_S;
        assert!(b.tick(half_open_at));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Still half-open just before probation elapses.
        assert!(!b.tick(half_open_at + CircuitBreaker::PROBATION_S - 1.0));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // A quiet probation re-closes silently (no wake signal) and
        // resets the crash window.
        assert!(!b.tick(half_open_at + CircuitBreaker::PROBATION_S));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.on_failure(half_open_at + CircuitBreaker::PROBATION_S + 1.0));
        assert!(!b.on_failure(half_open_at + CircuitBreaker::PROBATION_S + 2.0));
    }

    #[test]
    fn breaker_window_slides() {
        let mut b = CircuitBreaker::new();
        assert!(!b.on_failure(0.0));
        assert!(!b.on_failure(1.0));
        // The first two fall out of the window: no trip.
        assert!(!b.on_failure(1.0 + CircuitBreaker::WINDOW_S + 1.0));
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn plane_scores_and_breaker_gating() {
        let cfg = ControlConfig::none().with_churn_placement();
        let mut plane = ControlPlane::new(cfg, 2, 4, CapController::DEFAULT_START_CAP);
        assert_eq!(plane.site_scores(), &[1.0, 1.0]);
        assert!(!plane.dispatch_blocked(0));
        // Three rapid crashes at site 0 trip its breaker.
        assert!(!plane.on_worker_crash(0, 100.0));
        assert!(!plane.on_worker_crash(0, 101.0));
        assert!(plane.on_worker_crash(0, 102.0));
        assert!(plane.dispatch_blocked(0));
        assert!(!plane.dispatch_blocked(1));
        let out = plane.tick(200.0, 0, 0);
        let scores = out.scores.unwrap();
        assert_eq!(scores[0], 0.0, "open breaker zeroes the score");
        assert!(scores[1] > 0.99);
        // Cooldown elapses: half-open, probe wake requested.
        let out = plane.tick(102.0 + CircuitBreaker::COOLDOWN_S, 0, 0);
        assert_eq!(out.half_opened, vec![0]);
        assert!(!plane.dispatch_blocked(0));
        // Success closes it.
        assert!(plane.on_site_success(0, 900.0));
        assert_eq!(plane.breaker_state(0), BreakerState::Closed);
    }

    #[test]
    fn plane_mtbf_estimate_falls_back_global_then_site() {
        let cfg = ControlConfig::none().with_adaptive_checkpoint();
        let mut plane = ControlPlane::new(cfg, 2, 4, CapController::DEFAULT_START_CAP);
        assert_eq!(plane.site_worker_mtbf_s(0), None);
        // Two crashes at site 1 → one global gap: still below GLOBAL_MIN_GAPS.
        plane.on_worker_crash(1, 100.0);
        plane.on_worker_crash(1, 200.0);
        assert_eq!(plane.site_worker_mtbf_s(0), None);
        // A third crash gives two global gaps: global fallback kicks in
        // for site 0 (gap EWMA × total workers).
        plane.on_worker_crash(1, 300.0);
        let est = plane.site_worker_mtbf_s(0).unwrap();
        assert!((est - 100.0 * 8.0).abs() < 1e-9);
        // Site 1 accumulates SITE_MIN_GAPS local gaps → local estimate
        // (gap × workers_per_site).
        plane.on_worker_crash(1, 400.0);
        let est = plane.site_worker_mtbf_s(1).unwrap();
        assert!((est - 100.0 * 4.0).abs() < 1e-9);
    }

    #[test]
    fn plane_throttle_loop_differences_cumulative_counters() {
        let cfg = ControlConfig::none().with_adaptive_throttle();
        let mut plane = ControlPlane::new(cfg, 1, 4, 4);
        // Cumulative counters grow; the plane must difference them.
        let mut caps = Vec::new();
        let mut cancelled = 0;
        let mut completed = 0;
        for _ in 0..10 {
            cancelled += 90;
            completed += 10;
            let out = plane.tick(0.0, cancelled, completed);
            if let Some(c) = out.new_cap {
                assert!(!out.cap_raised);
                caps.push(c);
            }
        }
        assert_eq!(caps, vec![3, 2, 1]);
        assert!(plane.waste_ratio().unwrap() > 0.8);
    }

    #[test]
    #[should_panic(expected = "every loop disabled")]
    fn inert_plane_panics() {
        let _ = ControlPlane::new(ControlConfig::none(), 1, 1, 1);
    }
}
