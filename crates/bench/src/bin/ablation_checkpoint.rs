//! Ablation — checkpoint interval × MTBF under churn.
//!
//! A second axis the paper could not explore: once the grid churns
//! (`ablation_churn`), how much of the lost work can checkpoint/restart
//! buy back, and at what overhead? Sweeps checkpoint policies (none, two
//! fixed intervals, the adaptive Young/Daly optimum) against two worker
//! MTBF levels across all six compared algorithms, reporting makespan,
//! wasted compute, checkpoint volume and work saved per strategy.
//!
//! The interesting trade-off: short intervals bound the work a crash can
//! destroy but stall compute with image writes (which also contend with
//! file staging on the site's access link); long intervals are cheap but
//! rescue little. Young/Daly should sit near the sweet spot at every MTBF
//! without hand-tuning.

use gridsched_bench::{check, fmt, paper_strategies, run, Cli, Table};
use gridsched_sim::{CheckpointConfig, FaultConfig, MetricsReport, SimConfig};

/// Worker MTBF levels swept (seconds); MTTR fixed at MTBF/6 like
/// `ablation_churn`.
const MTBF_LEVELS: [f64; 2] = [21_600.0, 7_200.0];

/// Fixed checkpoint intervals swept (seconds).
const INTERVALS: [f64; 2] = [900.0, 3_600.0];

fn policies() -> Vec<(String, Option<CheckpointConfig>)> {
    let mut p: Vec<(String, Option<CheckpointConfig>)> = vec![("none".into(), None)];
    for interval in INTERVALS {
        p.push((
            format!("fixed:{interval:.0}s"),
            Some(CheckpointConfig::fixed(interval)),
        ));
    }
    p.push(("young-daly".into(), Some(CheckpointConfig::young_daly())));
    p
}

fn main() {
    let cli = Cli::parse();
    let workload = cli.workload();

    let mut table = Table::new(
        "Ablation: checkpoint policy x worker MTBF (MTTR = MTBF/6)",
        &[
            "algorithm",
            "mtbf_s",
            "policy",
            "makespan_min",
            "wasted_h",
            "ckpt_written",
            "ckpt_lost",
            "restores",
            "overhead_h",
            "saved_h",
        ],
    );

    // (strategy, mtbf) -> the no-checkpoint baseline report.
    let mut baselines: Vec<(String, f64, MetricsReport)> = Vec::new();
    let mut checkpointed: Vec<(String, MetricsReport)> = Vec::new();
    for strategy in paper_strategies() {
        for mtbf in MTBF_LEVELS {
            for (label, ckpt) in policies() {
                let mut config = SimConfig::paper(workload.clone(), strategy)
                    .with_faults(FaultConfig::none().with_worker_faults(mtbf, mtbf / 6.0));
                if let Some(c) = ckpt {
                    config = config.with_checkpointing(c);
                }
                let r = run(&cli, &config);
                table.push_row(vec![
                    strategy.to_string(),
                    fmt(mtbf, 0),
                    label.clone(),
                    fmt(r.makespan_minutes, 0),
                    fmt(r.wasted_compute_s / 3600.0, 1),
                    r.checkpoints_written.to_string(),
                    r.checkpoints_lost.to_string(),
                    r.checkpoint_restores.to_string(),
                    fmt(r.checkpoint_overhead_s / 3600.0, 1),
                    fmt(r.work_saved_s / 3600.0, 1),
                ]);
                if label == "none" {
                    baselines.push((strategy.to_string(), mtbf, r));
                } else {
                    checkpointed.push((strategy.to_string(), r));
                }
            }
        }
    }
    table.emit(&cli, "ablation_checkpoint");

    let tasks = workload.task_count() as u64;
    check(
        &cli,
        "every strategy completes the whole job under every policy",
        checkpointed.iter().all(|(_, r)| r.tasks_completed == tasks)
            && baselines.iter().all(|(_, _, r)| r.tasks_completed == tasks),
    );
    check(
        &cli,
        "checkpointing actually writes images and restores from them",
        checkpointed
            .iter()
            .all(|(_, r)| r.checkpoints_written > 0 && r.checkpoint_restores > 0),
    );
    // The headline claim: Young/Daly cuts re-executed compute vs the
    // no-checkpoint baseline at the same seed, for every strategy x MTBF.
    let yd_beats_none = baselines.iter().all(|(strategy, mtbf, base)| {
        checkpointed
            .iter()
            .filter(|(s, r)| {
                s == strategy
                    && r.config.checkpointing.starts_with("young-daly")
                    && r.config.faults == base.config.faults
            })
            .all(|(_, r)| r.wasted_compute_s < base.wasted_compute_s)
            && *mtbf > 0.0
    });
    check(
        &cli,
        "young-daly strictly cuts wasted compute vs no checkpointing",
        yd_beats_none,
    );
    check(
        &cli,
        "rescued work shows up in the accounting (saved_h > 0 under churn)",
        checkpointed.iter().all(|(_, r)| r.work_saved_s > 0.0),
    );
}
