//! Tiers-like hierarchical topology generator.
//!
//! The paper generates its simulation networks with the *Tiers* generator
//! (Doar 1996): hierarchical WAN / MAN / LAN structures. We reproduce that
//! shape — one WAN core router, `mans` MAN routers attached to it, and
//! `sites_per_man` site gateways per MAN — with per-tier bandwidth/latency
//! ranges sampled uniformly, plus optional redundant MAN–MAN cross links
//! (Tiers' "redundancy" parameter). The global file server and scheduler
//! attach to the WAN core, so **all sites share paths toward the file
//! server**, giving the inter-site contention the paper's evaluation relies
//! on.
//!
//! All randomness is taken from a seeded RNG; the paper's "5 different
//! topologies with 90 sites each" are `TiersConfig::paper(0) ..
//! TiersConfig::paper(4)`.

use rand::Rng;
use serde::{Deserialize, Serialize};

use gridsched_des::rng::{rng_for, Stream};

use crate::graph::{Graph, LinkSpec, NodeId, NodeKind};
use crate::route::RouteTable;

/// Uniform sampling ranges for one tier of links.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierRange {
    /// Minimum bandwidth, bytes/second.
    pub bw_min_bps: f64,
    /// Maximum bandwidth, bytes/second.
    pub bw_max_bps: f64,
    /// Minimum one-way latency, seconds.
    pub lat_min_s: f64,
    /// Maximum one-way latency, seconds.
    pub lat_max_s: f64,
}

impl TierRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if any bound is non-finite, a minimum exceeds its maximum, or
    /// bandwidth is non-positive.
    #[must_use]
    pub fn new(bw_min_bps: f64, bw_max_bps: f64, lat_min_s: f64, lat_max_s: f64) -> Self {
        assert!(bw_min_bps > 0.0 && bw_min_bps.is_finite());
        assert!(bw_max_bps >= bw_min_bps && bw_max_bps.is_finite());
        assert!(lat_min_s >= 0.0 && lat_min_s.is_finite());
        assert!(lat_max_s >= lat_min_s && lat_max_s.is_finite());
        TierRange {
            bw_min_bps,
            bw_max_bps,
            lat_min_s,
            lat_max_s,
        }
    }

    fn sample(&self, rng: &mut impl Rng) -> LinkSpec {
        let bw = if self.bw_min_bps == self.bw_max_bps {
            self.bw_min_bps
        } else {
            rng.gen_range(self.bw_min_bps..self.bw_max_bps)
        };
        let lat = if self.lat_min_s == self.lat_max_s {
            self.lat_min_s
        } else {
            rng.gen_range(self.lat_min_s..self.lat_max_s)
        };
        LinkSpec::new(bw, lat)
    }
}

/// Configuration of the Tiers-like generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TiersConfig {
    /// Number of MAN routers attached to the WAN core.
    pub mans: usize,
    /// Number of site gateways per MAN router.
    pub sites_per_man: usize,
    /// Link ranges for WAN-core ↔ MAN links.
    pub wan_link: TierRange,
    /// Link ranges for MAN ↔ site-gateway links (the shared *outgoing* link
    /// of each site in the paper's model).
    pub man_link: TierRange,
    /// Link ranges for the file-server and scheduler attachments to the core.
    pub server_link: TierRange,
    /// Probability of adding a redundant MAN–MAN cross link per adjacent MAN
    /// pair (Tiers' redundancy knob).
    pub redundancy: f64,
    /// Seed for this topology instance.
    pub seed: u64,
}

const MB: f64 = 1e6;

impl TiersConfig {
    /// The paper's setup: 90 sites (9 MANs × 10 sites), one file server and
    /// one scheduler on the WAN core. Seeds `0..5` give the paper's five
    /// averaged topologies.
    ///
    /// Bandwidths model the *effective* throughput of a 2007-era shared
    /// data grid: site uplinks are the bottleneck (0.4–1.4 MB/s effective —
    /// a 25 MB file takes ~12–40 s, so a cold ~78-file batch takes tens of
    /// minutes and a contended data-server queue reaches the hour scale of
    /// the paper's Table 3), while the backbone and the file-server uplink
    /// are an order of magnitude faster, so contention shifts to the
    /// server side as the number of active sites grows.
    #[must_use]
    pub fn paper(seed: u64) -> Self {
        TiersConfig {
            mans: 9,
            sites_per_man: 10,
            wan_link: TierRange::new(5.0 * MB, 20.0 * MB, 0.005, 0.020),
            man_link: TierRange::new(0.4 * MB, 1.4 * MB, 0.001, 0.010),
            server_link: TierRange::new(20.0 * MB, 50.0 * MB, 0.001, 0.005),
            redundancy: 0.3,
            seed,
        }
    }

    /// A small topology for unit tests and quick examples (2 MANs × 3 sites).
    #[must_use]
    pub fn small(seed: u64) -> Self {
        TiersConfig {
            mans: 2,
            sites_per_man: 3,
            ..TiersConfig::paper(seed)
        }
    }

    /// Total number of sites this config generates.
    #[must_use]
    pub fn site_count(&self) -> usize {
        self.mans * self.sites_per_man
    }
}

/// A generated grid network: the graph plus the well-known nodes and the
/// precomputed route table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    /// The underlying multigraph.
    pub graph: Graph,
    /// Site gateways, indexed by site id (`sites[i]` is site `i`).
    pub sites: Vec<NodeId>,
    /// The global external file server node.
    pub file_server: NodeId,
    /// The global scheduler node.
    pub scheduler: NodeId,
    /// Routes from each site to the global hosts.
    pub routes: RouteTable,
    /// The seed the topology was generated from.
    pub seed: u64,
}

/// Generates a topology from `config`.
///
/// Deterministic in `config` (including its seed).
///
/// # Panics
///
/// Panics if `config.mans` or `config.sites_per_man` is zero.
#[must_use]
pub fn generate(config: &TiersConfig) -> Topology {
    assert!(config.mans > 0, "need at least one MAN");
    assert!(config.sites_per_man > 0, "need at least one site per MAN");
    let mut rng = rng_for(config.seed, Stream::Topology);
    let mut graph = Graph::new();

    let core = graph.add_node(NodeKind::WanCore);
    let file_server = graph.add_node(NodeKind::FileServer);
    let scheduler = graph.add_node(NodeKind::Scheduler);
    graph.add_edge(core, file_server, config.server_link.sample(&mut rng));
    graph.add_edge(core, scheduler, config.server_link.sample(&mut rng));

    let mut mans = Vec::with_capacity(config.mans);
    for _ in 0..config.mans {
        let man = graph.add_node(NodeKind::ManRouter);
        graph.add_edge(core, man, config.wan_link.sample(&mut rng));
        mans.push(man);
    }

    // Redundant MAN–MAN cross links between consecutive MANs (ring-ish), as
    // Tiers does for its redundancy parameter.
    if config.mans >= 2 {
        for i in 0..config.mans {
            let j = (i + 1) % config.mans;
            if (i < j || config.mans > 2) && rng.gen_bool(config.redundancy.clamp(0.0, 1.0)) {
                graph.add_edge(mans[i], mans[j], config.wan_link.sample(&mut rng));
            }
        }
    }

    let mut sites = Vec::with_capacity(config.site_count());
    for (m, &man) in mans.iter().enumerate() {
        for s in 0..config.sites_per_man {
            let site_idx = (m * config.sites_per_man + s) as u32;
            let gw = graph.add_node(NodeKind::SiteGateway(site_idx));
            graph.add_edge(man, gw, config.man_link.sample(&mut rng));
            sites.push(gw);
        }
    }

    let routes = RouteTable::build(&graph, &sites, file_server, scheduler);
    Topology {
        graph,
        sites,
        file_server,
        scheduler,
        routes,
        seed: config.seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_has_90_sites() {
        let topo = generate(&TiersConfig::paper(0));
        assert_eq!(topo.sites.len(), 90);
        assert_eq!(topo.routes.site_count(), 90);
        // 1 core + fs + sched + 9 MANs + 90 sites
        assert_eq!(topo.graph.node_count(), 3 + 9 + 90);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = generate(&TiersConfig::paper(3));
        let b = generate(&TiersConfig::paper(3));
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        for e in a.graph.edges() {
            assert_eq!(a.graph.link(e), b.graph.link(e));
            assert_eq!(a.graph.endpoints(e), b.graph.endpoints(e));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&TiersConfig::paper(0));
        let b = generate(&TiersConfig::paper(1));
        let differs = a
            .graph
            .edges()
            .take(20)
            .any(|e| a.graph.link(e) != b.graph.link(e));
        assert!(differs, "two seeds should give different link specs");
    }

    #[test]
    fn every_site_routes_to_servers() {
        let topo = generate(&TiersConfig::paper(1));
        for i in 0..topo.sites.len() {
            let r = topo.routes.site_to_file_server(i);
            assert!(r.hops() >= 2, "site {i} suspiciously close to file server");
            assert!(r.latency_s > 0.0);
            let rs = topo.routes.site_to_scheduler(i);
            assert!(rs.hops() >= 2);
        }
    }

    #[test]
    fn site_uplink_is_bottleneck() {
        let topo = generate(&TiersConfig::paper(2));
        let cfg = TiersConfig::paper(2);
        for i in 0..topo.sites.len() {
            let b = topo
                .routes
                .site_to_file_server(i)
                .bottleneck_bps(&topo.graph);
            assert!(
                b <= cfg.man_link.bw_max_bps,
                "bottleneck {b} should be at most the site uplink max"
            );
        }
    }

    #[test]
    fn link_specs_within_ranges() {
        let cfg = TiersConfig::paper(4);
        let topo = generate(&cfg);
        for e in topo.graph.edges() {
            let spec = topo.graph.link(e);
            assert!(spec.bandwidth_bps >= cfg.man_link.bw_min_bps);
            assert!(spec.bandwidth_bps <= cfg.server_link.bw_max_bps);
            assert!(spec.latency_s >= cfg.man_link.lat_min_s.min(cfg.server_link.lat_min_s));
            assert!(spec.latency_s <= cfg.wan_link.lat_max_s.max(cfg.man_link.lat_max_s));
        }
    }

    #[test]
    fn small_config() {
        let topo = generate(&TiersConfig::small(0));
        assert_eq!(topo.sites.len(), 6);
    }

    #[test]
    #[should_panic(expected = "at least one MAN")]
    fn zero_mans_panics() {
        let mut cfg = TiersConfig::paper(0);
        cfg.mans = 0;
        let _ = generate(&cfg);
    }
}
