//! Synthetic Coadd workload generator.
//!
//! The paper evaluates on **Coadd** — the Sloan Digital Sky Survey
//! southern-hemisphere coaddition (Meyer et al., GriPhyN 2005-10). Coadd is
//! a *spatial processing* application: the sky is divided into a strip of
//! positions; several survey *runs* each contribute one image file per
//! position they cover; a coaddition task processes a window of adjacent
//! positions and reads **every** image overlapping its window. Adjacent
//! tasks therefore share most of their inputs — the data-sharing structure
//! all the paper's scheduling results rely on.
//!
//! The original trace (44,000 tasks / 588,900 files; the paper simulates the
//! first 6,000 tasks touching 53,390 files) is not publicly archived, so we
//! generate a synthetic equivalent with the same spatial structure:
//!
//! * a 1-D strip of `positions` sky positions,
//! * position `p` is covered by `n_p` image layers ("run fields"),
//!   `n_p ~ clamp(round(Normal(layers_mean, layers_std)), layers_min,
//!   layers_max)` — one file per (position, layer),
//! * task `i` covers window `[i, i + w_i)` with width
//!   `w_i ~ Uniform[window_min, window_max]`,
//! * every file carries a *participation probability*
//!   `q_f ~ Uniform[participation_min, participation_max]` modelling how
//!   much of the window's 2-D footprint the image actually overlaps (images
//!   near run and stripe boundaries overlap fewer windows); a task reads
//!   each file in its window independently with probability `q_f`,
//! * `flops = flops_per_file × |files|`.
//!
//! The participation model is what reproduces the paper's *spread* of
//! per-file reference counts (Figure 3 shows ~15% of files referenced by 5
//! or fewer tasks even though the mean is ≈ 8.8).
//!
//! [`CoaddConfig::paper_6000`] is calibrated against the paper's Table 2 and
//! Figure 3 (see the `calibration` test module): ~53 k files, files/task
//! min ≈ 36 / mean ≈ 78.4 / max ≈ 101-ish, and ~85–90% of files referenced
//! by ≥ 6 tasks.

use rand::Rng;
use rand_distr_normal::sample_normal;
use serde::{Deserialize, Serialize};

use gridsched_des::rng::{rng_for, Stream};

use crate::types::{FileId, TaskId, TaskSpec, Workload};

/// Minimal Box–Muller normal sampler so we do not need an extra dependency.
mod rand_distr_normal {
    use rand::Rng;

    /// Samples one `Normal(mean, std)` variate by Box–Muller.
    pub fn sample_normal(rng: &mut impl Rng, mean: f64, std: f64) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std * z
    }
}

/// Configuration of the synthetic Coadd generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoaddConfig {
    /// Number of coaddition tasks (one per window start position).
    pub tasks: u32,
    /// Minimum window width in positions.
    pub window_min: u32,
    /// Maximum window width in positions (inclusive).
    pub window_max: u32,
    /// Mean number of image layers per position.
    pub layers_mean: f64,
    /// Std-dev of layers per position.
    pub layers_std: f64,
    /// Lower clamp on layers per position.
    pub layers_min: u32,
    /// Upper clamp on layers per position.
    pub layers_max: u32,
    /// Lower bound of the per-file participation probability.
    pub participation_min: f64,
    /// Upper bound of the per-file participation probability.
    pub participation_max: f64,
    /// Shuffle the task order (default `true`). A real survey trace
    /// enumerates coaddition tiles in survey-specific order (stripe by
    /// stripe, run by run), **not** sorted along the sky strip; with
    /// sequential ids, every cold site would tie-break to the same lowest
    /// pending id and all sites would crowd onto one spatial frontier —
    /// an artifact no real trace exhibits. The shuffle is a seeded
    /// permutation of window start positions; set to `false` for tests
    /// that rely on id-adjacent tasks sharing files.
    pub shuffle_tasks: bool,
    /// Granularity of the shuffle: the strip is cut into blocks of this
    /// many consecutive start positions and the *blocks* are permuted,
    /// preserving survey-like short-range order inside a block. `1` is a
    /// full per-task shuffle.
    pub shuffle_block: u32,
    /// Compute cost per input file, in FLOPs.
    pub flops_per_file: f64,
    /// Size of every file in bytes (Table 1 default: 25 MB).
    pub file_size_bytes: f64,
    /// Master seed (stream-separated from other components).
    pub seed: u64,
}

impl CoaddConfig {
    /// The paper's scaled-down workload: 6,000 tasks / ~53 k files
    /// (Table 2, Figure 3). Calibrated so files-per-task mean ≈ 78.4 and
    /// ~85–90% of files are referenced by ≥ 6 tasks.
    #[must_use]
    pub fn paper_6000() -> Self {
        CoaddConfig {
            tasks: 6000,
            window_min: 9,
            window_max: 18,
            layers_mean: 8.93,
            layers_std: 1.0,
            layers_min: 6,
            layers_max: 12,
            participation_min: 0.30,
            participation_max: 1.0,
            shuffle_tasks: true,
            shuffle_block: 50,
            // Calibrated so aggregate compute dominates (≈90% of makespan
            // for the locality-aware strategies, as in the paper): a
            // 78-file task runs ~65 min on a median (≈58 GFLOPS) worker.
            flops_per_file: 2.9e12,
            file_size_bytes: 25e6,
            seed: 0,
        }
    }

    /// The full Coadd job: 44,000 tasks / ~589 k files, files/task mean
    /// ≈ 124 (Section 2.1 of the paper; Figure 1). Mainly used to
    /// regenerate Figure 1.
    #[must_use]
    pub fn paper_full() -> Self {
        CoaddConfig {
            tasks: 44_000,
            window_min: 9,
            window_max: 18,
            layers_mean: 13.6,
            layers_std: 1.5,
            layers_min: 9,
            layers_max: 19,
            participation_min: 0.35,
            participation_max: 1.0,
            shuffle_tasks: true,
            shuffle_block: 50,
            flops_per_file: 2.9e12,
            file_size_bytes: 5e6, // the full-Coadd discussion assumes 5 MB files
            seed: 0,
        }
    }

    /// A small workload for tests and examples (200 tasks).
    #[must_use]
    pub fn small(seed: u64) -> Self {
        CoaddConfig {
            tasks: 200,
            seed,
            ..CoaddConfig::paper_6000()
        }
    }

    /// Returns a copy with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different per-file size (Figure 8 sweeps 5, 25
    /// and 50 MB).
    #[must_use]
    pub fn with_file_size_mb(mut self, mb: f64) -> Self {
        self.file_size_bytes = mb * 1e6;
        self
    }

    /// Generates the workload.
    ///
    /// Deterministic in the full config (including the seed).
    ///
    /// # Panics
    ///
    /// Panics if the config is degenerate (zero tasks, inverted ranges…).
    #[must_use]
    pub fn generate(&self) -> Workload {
        assert!(self.tasks > 0, "need at least one task");
        assert!(
            self.window_min >= 1 && self.window_min <= self.window_max,
            "bad window range"
        );
        assert!(
            self.layers_min >= 1 && self.layers_min <= self.layers_max,
            "bad layers range"
        );
        assert!(
            (0.0..=1.0).contains(&self.participation_min)
                && self.participation_min <= self.participation_max
                && self.participation_max <= 1.0,
            "bad participation range"
        );
        let mut rng = rng_for(self.seed, Stream::Workload);
        let positions = (self.tasks + self.window_max) as usize;

        // Layer counts per position, dense file ids per (position, layer),
        // and per-file participation probabilities.
        let mut layer_count = Vec::with_capacity(positions);
        let mut first_file = Vec::with_capacity(positions + 1);
        let mut next_file = 0u32;
        for _ in 0..positions {
            let n = sample_normal(&mut rng, self.layers_mean, self.layers_std).round();
            let n = (n.max(self.layers_min as f64) as u32).min(self.layers_max);
            layer_count.push(n);
            first_file.push(next_file);
            next_file += n;
        }
        first_file.push(next_file);
        let participation: Vec<f64> = (0..next_file)
            .map(|_| rng.gen_range(self.participation_min..=self.participation_max))
            .collect();

        // Tasks: sliding windows of random width; each in-window file joins
        // the task's input set with its participation probability. A task
        // always reads at least one file per covered position (the window
        // centre of an image stack never misses entirely).
        // Task id → window start position. Identity when unshuffled; a
        // seeded Fisher–Yates permutation of `shuffle_block`-sized blocks
        // of start positions otherwise (see `shuffle_tasks`).
        let block = (self.shuffle_block.max(1)) as usize;
        let n_tasks = self.tasks as usize;
        let mut starts: Vec<usize> = (0..n_tasks).collect();
        if self.shuffle_tasks {
            let n_blocks = n_tasks.div_ceil(block);
            let mut order: Vec<usize> = (0..n_blocks).collect();
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            starts.clear();
            for b in order {
                let lo = b * block;
                let hi = ((b + 1) * block).min(n_tasks);
                starts.extend(lo..hi);
            }
        }
        let mut tasks = Vec::with_capacity(self.tasks as usize);
        for i in 0..self.tasks {
            let w = rng.gen_range(self.window_min..=self.window_max) as usize;
            let start = starts[i as usize];
            let mut files = Vec::new();
            for p in start..start + w {
                let base = first_file[p];
                let before = files.len();
                for layer in 0..layer_count[p] {
                    let f = base + layer;
                    if rng.gen_bool(participation[f as usize]) {
                        files.push(FileId(f));
                    }
                }
                if files.len() == before {
                    // Guarantee progress: take the first layer.
                    files.push(FileId(base));
                }
            }
            let flops = self.flops_per_file * files.len() as f64;
            tasks.push(TaskSpec::new(TaskId(i), files, flops));
        }

        // Trailing positions may be unreferenced (windows never reach them
        // if every last window is narrow); compact ids for a well-formed
        // universe.
        let wl = Workload::new(
            tasks,
            next_file,
            self.file_size_bytes,
            format!(
                "coadd(tasks={}, w=[{},{}], layers~N({},{}) clamp[{},{}], seed={})",
                self.tasks,
                self.window_min,
                self.window_max,
                self.layers_mean,
                self.layers_std,
                self.layers_min,
                self.layers_max,
                self.seed
            ),
        );
        // Re-densify in case the tail positions went unused.
        wl.take_prefix(wl.task_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = CoaddConfig::small(3).generate();
        let b = CoaddConfig::small(3).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_differ() {
        let a = CoaddConfig::small(0).generate();
        let b = CoaddConfig::small(1).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn neighbours_share_files() {
        let mut cfg = CoaddConfig::small(0);
        cfg.shuffle_tasks = false;
        let wl = cfg.generate();
        let t0: std::collections::HashSet<_> = wl.task(TaskId(0)).files().iter().collect();
        let t1: std::collections::HashSet<_> = wl.task(TaskId(1)).files().iter().collect();
        let shared = t0.intersection(&t1).count();
        assert!(
            shared * 2 > t0.len(),
            "adjacent coadd tasks should share most inputs (shared {shared} of {})",
            t0.len()
        );
        // Distant tasks share nothing.
        let t100: std::collections::HashSet<_> = wl.task(TaskId(100)).files().iter().collect();
        assert_eq!(t0.intersection(&t100).count(), 0);
    }

    #[test]
    fn flops_proportional_to_files() {
        let cfg = CoaddConfig::small(0);
        let wl = cfg.generate();
        for t in wl.tasks() {
            assert!((t.flops - cfg.flops_per_file * t.file_count() as f64).abs() < 1.0);
        }
    }

    #[test]
    fn every_file_is_referenced() {
        let wl = CoaddConfig::small(5).generate();
        let refs = wl.reference_counts();
        assert!(refs.iter().all(|&c| c >= 1), "dense universe after prefix");
    }
}

/// Calibration tests: the synthetic generator must reproduce the paper's
/// Table 2 / Figure 3 characteristics within tolerance. These run on the
/// full 6,000-task workload (still < 1 s).
#[cfg(test)]
mod calibration {
    use super::*;

    #[test]
    fn paper_6000_matches_table2() {
        let wl = CoaddConfig::paper_6000().generate();
        let s = wl.stats();
        assert_eq!(s.tasks, 6000);
        // Paper: 53,390 total files (±5%).
        assert!(
            (s.total_files as f64 - 53_390.0).abs() < 53_390.0 * 0.05,
            "total files {} vs paper 53,390",
            s.total_files
        );
        // Paper: mean 78.4327 (±3).
        assert!(
            (s.mean_files_per_task - 78.4327).abs() < 3.0,
            "mean files/task {}",
            s.mean_files_per_task
        );
        // Paper: min 36 / max 101 — allow generous bands.
        assert!(
            s.min_files_per_task >= 30 && s.min_files_per_task <= 45,
            "min files/task {}",
            s.min_files_per_task
        );
        assert!(
            s.max_files_per_task >= 95 && s.max_files_per_task <= 130,
            "max files/task {}",
            s.max_files_per_task
        );
    }

    #[test]
    fn paper_6000_matches_figure3_cdf() {
        let wl = CoaddConfig::paper_6000().generate();
        let s = wl.stats();
        let pct6 = s.pct_files_with_at_least(6);
        // Paper: "roughly 85% of files are accessed by 6 or more tasks".
        assert!(
            (75.0..=97.0).contains(&pct6),
            "pct of files with ≥6 refs = {pct6}"
        );
        // Everything is referenced at least once.
        assert!((s.pct_files_with_at_least(1) - 100.0).abs() < 1e-9);
        // The x-axis of Figure 3 tops out around 12-13 references; with the
        // participation spread ours extends a little further.
        assert!(s.max_references() <= 22, "max refs {}", s.max_references());
    }

    #[test]
    fn paper_full_scale() {
        let wl = CoaddConfig::paper_full().generate();
        let s = wl.stats();
        assert_eq!(s.tasks, 44_000);
        // Paper: 588,900 files; mean ≈ 124 files/task; 90% ≥ 6 refs.
        assert!(
            (s.total_files as f64 - 588_900.0).abs() < 588_900.0 * 0.05,
            "total files {}",
            s.total_files
        );
        assert!(
            (s.mean_files_per_task - 124.0).abs() < 6.0,
            "mean files/task {}",
            s.mean_files_per_task
        );
        let pct6 = s.pct_files_with_at_least(6);
        assert!((80.0..=99.0).contains(&pct6), "pct ≥6 refs = {pct6}");
    }
}
