//! Ablation — extra baselines beyond the paper's six algorithms.
//!
//! Adds the classic **workqueue** (FIFO pull, no locality — the paper's
//! §2.3 example of worker-centric scheduling) and a data-aware
//! **XSufferage**-style heuristic (the comparator storage affinity was
//! originally evaluated against, §6/[5]) to the default-configuration
//! comparison. Expected ordering: transfer-aware worker-centric metrics ≤
//! xsufferage ≤ storage-affinity/overlap ≪ workqueue on transfers.

use gridsched_bench::{check, fmt, run, Cli, Table};
use gridsched_core::StrategyKind;
use gridsched_sim::SimConfig;

fn main() {
    let cli = Cli::parse();
    let workload = cli.workload();

    let strategies = [
        StrategyKind::Rest2,
        StrategyKind::Combined2,
        StrategyKind::Sufferage,
        StrategyKind::StorageAffinity,
        StrategyKind::Overlap,
        StrategyKind::Workqueue,
    ];
    let mut table = Table::new(
        "Ablation: baseline face-off (Table 1 defaults)",
        &["algorithm", "makespan_min", "file_transfers", "bytes_GB"],
    );
    let mut measured = Vec::new();
    for strategy in strategies {
        let config = SimConfig::paper(workload.clone(), strategy);
        let r = run(&cli, &config);
        table.push_row(vec![
            strategy.to_string(),
            fmt(r.makespan_minutes, 0),
            r.file_transfers.to_string(),
            fmt(r.bytes_transferred / 1e9, 1),
        ]);
        measured.push((strategy, r.makespan_minutes, r.file_transfers));
    }
    table.emit(&cli, "ablation_baselines");

    let get = |k: StrategyKind| measured.iter().find(|(s, _, _)| *s == k).expect("measured");
    check(
        &cli,
        "workqueue (no locality) is the worst on transfers",
        measured
            .iter()
            .all(|(s, _, t)| *s == StrategyKind::Workqueue || *t < get(StrategyKind::Workqueue).2),
    );
    check(
        &cli,
        "transfer-aware worker-centric beats xsufferage on makespan",
        get(StrategyKind::Rest2).1 < get(StrategyKind::Sufferage).1,
    );
    check(
        &cli,
        "xsufferage (demand-driven, data-aware) beats workqueue",
        get(StrategyKind::Sufferage).1 < get(StrategyKind::Workqueue).1,
    );
}
