//! Simulation configuration (the paper's Table 1 defaults).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use gridsched_checkpoint::CheckpointConfig;
use gridsched_core::{ControlConfig, EvalMode, ReplicaThrottle, StrategyKind};
use gridsched_faults::FaultConfig;
use gridsched_storage::EvictionPolicy;
use gridsched_topology::TiersConfig;
use gridsched_workload::Workload;

use crate::replication::ReplicationConfig;
use crate::speeds::SpeedModel;

/// Everything one simulation run needs.
///
/// Construct with [`SimConfig::paper`] (Table 1 defaults: capacity 6,000
/// files, 1 worker per site, 10 sites, 25 MB files — the file size lives on
/// the workload) and adjust with the `with_*` methods.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The Bag-of-Tasks job to run.
    pub workload: Arc<Workload>,
    /// Which scheduling algorithm drives the run.
    pub strategy: StrategyKind,
    /// Number of sites actually used ("Only a subset of 90 sites are used
    /// in each experiment" — the first `sites` of the topology).
    pub sites: usize,
    /// Workers per site.
    pub workers_per_site: usize,
    /// Data-server storage capacity, in files.
    pub capacity_files: usize,
    /// Replacement policy of the data servers.
    pub policy: EvictionPolicy,
    /// Topology generator configuration (the topology seed is
    /// `topology.seed`, independent of [`SimConfig::seed`]).
    pub topology: TiersConfig,
    /// Master seed for worker speeds and scheduler randomization.
    pub seed: u64,
    /// Worker speed model.
    pub speeds: SpeedModel,
    /// Optional proactive data-replication extension (ablation; off by
    /// default — the paper treats it as orthogonal).
    pub replication: Option<ReplicationConfig>,
    /// Overrides `ChooseTask(n)` for worker-centric strategies (ablation;
    /// `None` keeps the strategy's own n — 1, or 2 for the `.2` variants).
    pub choose_n_override: Option<usize>,
    /// Fault injection: worker/server churn processes and scripted fault
    /// traces. `None` (or an inert config) reproduces the fault-free
    /// engine byte for byte.
    pub faults: Option<FaultConfig>,
    /// Checkpoint/restart: periodic checkpoint images so a crashed task
    /// resumes from its latest surviving checkpoint instead of restarting.
    /// `None` (or a `CheckpointPolicy::None` config) reproduces the
    /// checkpoint-free engine byte for byte.
    pub checkpointing: Option<CheckpointConfig>,
    /// Bounds on storage affinity's speculative replica fan-out (per-task
    /// cap, per-site in-flight budget). The default —
    /// [`ReplicaThrottle::none`] — reproduces the unthrottled scheduler
    /// byte for byte; only meaningful for
    /// [`StrategyKind::StorageAffinity`].
    pub replica_throttle: ReplicaThrottle,
    /// Closed-loop controllers (adaptive throttle, churn-aware placement,
    /// self-tuning Young–Daly). The default — [`ControlConfig::none`] —
    /// disables every loop and reproduces the open-loop engine byte for
    /// byte (property-tested in `tests/scheduler_equivalence.rs`).
    pub control: ControlConfig,
    /// Transfer guard: arms a timeout on every batch input fetch, sized as
    /// this multiple of the transfer's expected fair-share duration
    /// (`latency + bytes / fair-share rate` at flow start). `None` — the
    /// default — disables the guard entirely and reproduces the unguarded
    /// engine byte for byte.
    pub transfer_timeout_mult: Option<f64>,
    /// Transfer guard: retry attempts per fetch before the task is
    /// requeued (only read when [`SimConfig::transfer_timeout_mult`] is
    /// set). Attempt k + 1 starts after an exponentially backed-off,
    /// jittered delay and — unless [`SimConfig::transfer_naive_retry`] —
    /// may fail over to another replica of the file and resumes from the
    /// bytes already delivered.
    pub transfer_retries: u32,
    /// Transfer guard: base of the exponential retry backoff, seconds
    /// (attempt k waits `backoff × 2^(k-1) × jitter`, jitter uniform in
    /// `[0.5, 1.5)`).
    pub retry_backoff_s: f64,
    /// Transfer guard ablation: naive restart-from-zero retries — no
    /// failover (always re-fetch from the origin server) and no resume
    /// (delivered bytes are discarded and re-sent). The baseline the
    /// `ablation_netfaults` bench beats.
    pub transfer_naive_retry: bool,
    /// How schedulers evaluate their per-decision scans. All modes yield
    /// byte-identical simulations (property-tested); they differ only in
    /// wall-clock cost. Defaults to [`EvalMode::Incremental`]; an
    /// implementation detail, deliberately excluded from
    /// [`ConfigSummary`] so reports from different modes compare equal.
    pub eval_mode: EvalMode,
    /// Chrome Trace Event Format output path (`--trace-out`): per-task
    /// lifecycle spans and fault/outage windows, loadable in Perfetto.
    /// `None` disables span export. Telemetry is provably inert — the
    /// [`MetricsReport`](crate::MetricsReport) is byte-identical with it
    /// on or off (property-tested) — and, like `eval_mode`, excluded from
    /// [`ConfigSummary`].
    pub trace_out: Option<String>,
    /// JSONL metrics output path (`--metrics-out`): one line per named
    /// instrument, then one per probe sample. `None` disables.
    pub metrics_out: Option<String>,
    /// Sim-time probe sampling interval in seconds (`--probe-interval`):
    /// per-site queue depth / worker-state / link-occupancy time series,
    /// sampled between dispatched events (never *as* an event). `None`
    /// disables probing.
    pub probe_interval_s: Option<f64>,
    /// Determinism-digest output path (`--digest-out`): windowed rolling
    /// hashes of the dispatched event stream as JSONL, bisectable with
    /// `gridsched diff-digests`. Folded between events in the run loop
    /// (never *as* an event), so — like the rest of telemetry — provably
    /// inert and excluded from [`ConfigSummary`]. `None` disables.
    pub digest_out: Option<String>,
    /// Sim-time window width of the digest stream, seconds
    /// (`--digest-window`; default one sim hour). Only read when
    /// [`SimConfig::digest_out`] is set.
    pub digest_window_s: f64,
    /// Serve `/metrics` (Prometheus text format over the instrument
    /// registry) and `/healthz` from a background thread during the run
    /// (`--serve-metrics 127.0.0.1:9090`). `None` disables.
    pub serve_metrics: Option<String>,
    /// Seconds of wall time to keep serving after the run finishes
    /// (`--serve-linger`; lets scrapers collect the final snapshot).
    pub serve_linger_s: f64,
}

/// Serializable summary of a configuration (embedded in reports).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigSummary {
    /// Algorithm label (paper's naming, e.g. `rest.2`).
    pub strategy: String,
    /// Number of sites used.
    pub sites: usize,
    /// Workers per site.
    pub workers_per_site: usize,
    /// Capacity in files.
    pub capacity_files: usize,
    /// Replacement policy.
    pub policy: String,
    /// File size in MB.
    pub file_size_mb: f64,
    /// Number of tasks.
    pub tasks: usize,
    /// Topology seed.
    pub topology_seed: u64,
    /// Master seed.
    pub seed: u64,
    /// Fault environment (`"none"` when fault injection is off or inert).
    pub faults: String,
    /// Checkpoint environment (`"none"` when checkpointing is off).
    pub checkpointing: String,
    /// Replica throttle (`"none"` when unbounded).
    pub replica_throttle: String,
    /// Enabled control loops (`"none"` when every controller is off).
    pub control: String,
    /// Transfer guard (`"none"` when no timeout is armed). Defaults to
    /// `"none"` when absent so reports written before the guard existed
    /// still deserialize.
    #[serde(default = "default_transfer_guard")]
    pub transfer_guard: String,
}

fn default_transfer_guard() -> String {
    "none".to_string()
}

impl SimConfig {
    /// Table 1 defaults: 10 sites, 1 worker/site, 6,000-file capacity, LRU,
    /// paper topology (seed 0), paper speed model.
    #[must_use]
    pub fn paper(workload: Arc<Workload>, strategy: StrategyKind) -> Self {
        SimConfig {
            workload,
            strategy,
            sites: 10,
            workers_per_site: 1,
            capacity_files: 6000,
            policy: EvictionPolicy::Lru,
            topology: TiersConfig::paper(0),
            seed: 0,
            speeds: SpeedModel::paper(),
            replication: None,
            choose_n_override: None,
            faults: None,
            checkpointing: None,
            replica_throttle: ReplicaThrottle::none(),
            control: ControlConfig::none(),
            transfer_timeout_mult: None,
            transfer_retries: 0,
            retry_backoff_s: 60.0,
            transfer_naive_retry: false,
            eval_mode: EvalMode::default(),
            trace_out: None,
            metrics_out: None,
            probe_interval_s: None,
            digest_out: None,
            digest_window_s: 3600.0,
            serve_metrics: None,
            serve_linger_s: 0.0,
        }
    }

    /// Sets the number of sites used (Figure 7 sweeps 10–26).
    ///
    /// # Panics
    ///
    /// Panics if `sites` is zero or exceeds the topology's site count.
    #[must_use]
    pub fn with_sites(mut self, sites: usize) -> Self {
        assert!(sites >= 1, "need at least one site");
        assert!(
            sites <= self.topology.site_count(),
            "topology only has {} sites",
            self.topology.site_count()
        );
        self.sites = sites;
        self
    }

    /// Sets workers per site (Figure 6 sweeps 2–10).
    ///
    /// # Panics
    ///
    /// Panics if zero.
    #[must_use]
    pub fn with_workers_per_site(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker per site");
        self.workers_per_site = workers;
        self
    }

    /// Sets the data-server capacity (Figure 4 sweeps 3,000–30,000).
    ///
    /// # Panics
    ///
    /// Panics if zero.
    #[must_use]
    pub fn with_capacity(mut self, files: usize) -> Self {
        assert!(files >= 1, "capacity must be positive");
        self.capacity_files = files;
        self
    }

    /// Sets the replacement policy.
    #[must_use]
    pub fn with_policy(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the topology seed (the paper averages seeds 0–4).
    #[must_use]
    pub fn with_topology_seed(mut self, seed: u64) -> Self {
        self.topology.seed = seed;
        self
    }

    /// Sets the master seed (worker speeds, scheduler randomization).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker speed model.
    #[must_use]
    pub fn with_speeds(mut self, speeds: SpeedModel) -> Self {
        self.speeds = speeds;
        self
    }

    /// Enables the proactive data-replication extension.
    #[must_use]
    pub fn with_replication(mut self, replication: ReplicationConfig) -> Self {
        self.replication = Some(replication);
        self
    }

    /// Overrides `ChooseTask(n)` for worker-centric strategies (ablation).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn with_choose_n(mut self, n: usize) -> Self {
        assert!(n >= 1, "ChooseTask(n) needs n >= 1");
        self.choose_n_override = Some(n);
        self
    }

    /// Swaps the scheduling strategy, keeping everything else.
    #[must_use]
    pub fn with_strategy(mut self, strategy: StrategyKind) -> Self {
        self.strategy = strategy;
        self
    }

    /// Enables fault injection (worker/server churn, scripted traces).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Enables checkpoint/restart (periodic images, resume after crashes).
    #[must_use]
    pub fn with_checkpointing(mut self, checkpointing: CheckpointConfig) -> Self {
        self.checkpointing = Some(checkpointing);
        self
    }

    /// Bounds storage affinity's replica fan-out (see [`ReplicaThrottle`]).
    #[must_use]
    pub fn with_replica_throttle(mut self, throttle: ReplicaThrottle) -> Self {
        self.replica_throttle = throttle;
        self
    }

    /// Caps concurrent replica executions per task.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    #[must_use]
    pub fn with_replica_cap(mut self, cap: u32) -> Self {
        self.replica_throttle = self.replica_throttle.with_replica_cap(cap);
        self
    }

    /// Caps concurrent replica executions launched per site.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is zero.
    #[must_use]
    pub fn with_site_replica_budget(mut self, budget: u32) -> Self {
        self.replica_throttle = self.replica_throttle.with_site_budget(budget);
        self
    }

    /// Enables closed-loop controllers (see [`ControlConfig`]).
    #[must_use]
    pub fn with_control(mut self, control: ControlConfig) -> Self {
        self.control = control;
        self
    }

    /// Arms the transfer guard: every batch fetch times out after `mult ×`
    /// its expected fair-share duration.
    ///
    /// # Panics
    ///
    /// Panics if `mult` is not strictly greater than 1 and finite (a
    /// multiple at or below the expected duration would time out healthy
    /// transfers).
    #[must_use]
    pub fn with_transfer_timeout(mut self, mult: f64) -> Self {
        assert!(
            mult > 1.0 && mult.is_finite(),
            "transfer timeout multiple must be > 1"
        );
        self.transfer_timeout_mult = Some(mult);
        self
    }

    /// Sets the retry budget per fetch before the task is requeued.
    #[must_use]
    pub fn with_transfer_retries(mut self, retries: u32) -> Self {
        self.transfer_retries = retries;
        self
    }

    /// Sets the exponential retry backoff base, seconds.
    ///
    /// # Panics
    ///
    /// Panics if `backoff_s` is not positive and finite.
    #[must_use]
    pub fn with_retry_backoff(mut self, backoff_s: f64) -> Self {
        assert!(
            backoff_s > 0.0 && backoff_s.is_finite(),
            "retry backoff must be positive"
        );
        self.retry_backoff_s = backoff_s;
        self
    }

    /// Selects naive restart-from-zero retries (ablation baseline: no
    /// failover, no resume).
    #[must_use]
    pub fn with_naive_retry(mut self) -> Self {
        self.transfer_naive_retry = true;
        self
    }

    /// Selects the scheduler evaluation path (validation/benchmarking; the
    /// simulation output is identical across modes).
    #[must_use]
    pub fn with_eval_mode(mut self, eval_mode: EvalMode) -> Self {
        self.eval_mode = eval_mode;
        self
    }

    /// Writes per-task lifecycle spans as Chrome Trace Event Format JSON
    /// (open with Perfetto or `chrome://tracing`).
    #[must_use]
    pub fn with_trace_out(mut self, path: impl Into<String>) -> Self {
        self.trace_out = Some(path.into());
        self
    }

    /// Writes instrument snapshots and probe samples as JSONL.
    #[must_use]
    pub fn with_metrics_out(mut self, path: impl Into<String>) -> Self {
        self.metrics_out = Some(path.into());
        self
    }

    /// Samples per-site occupancy time series every `interval_s` sim
    /// seconds.
    ///
    /// # Panics
    ///
    /// Panics if `interval_s` is not positive and finite.
    #[must_use]
    pub fn with_probe_interval(mut self, interval_s: f64) -> Self {
        assert!(
            interval_s > 0.0 && interval_s.is_finite(),
            "probe interval must be positive"
        );
        self.probe_interval_s = Some(interval_s);
        self
    }

    /// Writes windowed determinism digests of the event stream as JSONL.
    #[must_use]
    pub fn with_digest_out(mut self, path: impl Into<String>) -> Self {
        self.digest_out = Some(path.into());
        self
    }

    /// Sets the digest window width (sim seconds).
    ///
    /// # Panics
    ///
    /// Panics if `window_s` is not positive and finite.
    #[must_use]
    pub fn with_digest_window(mut self, window_s: f64) -> Self {
        assert!(
            window_s > 0.0 && window_s.is_finite(),
            "digest window must be positive"
        );
        self.digest_window_s = window_s;
        self
    }

    /// Serves `/metrics` + `/healthz` at `addr` during the run.
    #[must_use]
    pub fn with_serve_metrics(mut self, addr: impl Into<String>) -> Self {
        self.serve_metrics = Some(addr.into());
        self
    }

    /// Keeps serving for `linger_s` wall seconds after the run finishes.
    ///
    /// # Panics
    ///
    /// Panics if `linger_s` is negative or not finite.
    #[must_use]
    pub fn with_serve_linger(mut self, linger_s: f64) -> Self {
        assert!(
            linger_s >= 0.0 && linger_s.is_finite(),
            "serve linger must be non-negative"
        );
        self.serve_linger_s = linger_s;
        self
    }

    /// True when any telemetry output is requested, so the engine enables
    /// its instruments; otherwise every record is a single dead branch.
    /// The determinism digest is deliberately *not* included: it hashes
    /// the event stream directly and needs no instruments.
    #[must_use]
    pub fn telemetry_requested(&self) -> bool {
        self.trace_out.is_some()
            || self.metrics_out.is_some()
            || self.probe_interval_s.is_some()
            || self.serve_metrics.is_some()
    }

    /// Applies the per-replicate `.seed<N>` suffix to every configured
    /// output path — the one shared helper behind `--trace-out`,
    /// `--metrics-out` and `--digest-out` when a run fans out over several
    /// topology seeds (each replicate must write its own files).
    pub fn suffix_outputs_for_seed(&mut self, seed: u64) {
        for path in [
            self.trace_out.as_mut(),
            self.metrics_out.as_mut(),
            self.digest_out.as_mut(),
        ]
        .into_iter()
        .flatten()
        {
            *path = seeded_output_path(path, seed);
        }
    }

    /// The serializable summary embedded in reports.
    #[must_use]
    pub fn summary(&self) -> ConfigSummary {
        ConfigSummary {
            strategy: self.strategy.to_string(),
            sites: self.sites,
            workers_per_site: self.workers_per_site,
            capacity_files: self.capacity_files,
            policy: self.policy.to_string(),
            file_size_mb: self.workload.file_size_bytes / 1e6,
            tasks: self.workload.task_count(),
            topology_seed: self.topology.seed,
            seed: self.seed,
            faults: self
                .faults
                .as_ref()
                .map_or_else(|| "none".to_string(), FaultConfig::summary),
            checkpointing: self
                .checkpointing
                .as_ref()
                .map_or_else(|| "none".to_string(), CheckpointConfig::summary),
            replica_throttle: self.replica_throttle.summary(),
            control: self.control.summary(),
            transfer_guard: self.transfer_guard_summary(),
        }
    }

    /// Human-readable transfer-guard line (`"none"` when no timeout set).
    #[must_use]
    pub fn transfer_guard_summary(&self) -> String {
        match self.transfer_timeout_mult {
            None => default_transfer_guard(),
            Some(mult) => {
                let mut s = format!(
                    "timeout={mult:.1}x retries={} backoff={:.0}s",
                    self.transfer_retries, self.retry_backoff_s
                );
                if self.transfer_naive_retry {
                    s.push_str(" naive");
                }
                s
            }
        }
    }
}

/// The `.seed<N>` suffix convention for per-replicate output files:
/// `runs/trace.json` → `runs/trace.json.seed3`.
#[must_use]
pub fn seeded_output_path(path: &str, seed: u64) -> String {
    format!("{path}.seed{seed}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridsched_workload::coadd::CoaddConfig;

    fn wl() -> Arc<Workload> {
        Arc::new(CoaddConfig::small(0).generate())
    }

    #[test]
    fn paper_defaults_match_table1() {
        let c = SimConfig::paper(wl(), StrategyKind::Rest);
        assert_eq!(c.sites, 10);
        assert_eq!(c.workers_per_site, 1);
        assert_eq!(c.capacity_files, 6000);
        assert_eq!(c.policy, EvictionPolicy::Lru);
    }

    #[test]
    fn builder_methods() {
        let c = SimConfig::paper(wl(), StrategyKind::Overlap)
            .with_sites(26)
            .with_workers_per_site(6)
            .with_capacity(3000)
            .with_topology_seed(3)
            .with_seed(9);
        assert_eq!(c.sites, 26);
        assert_eq!(c.workers_per_site, 6);
        assert_eq!(c.capacity_files, 3000);
        assert_eq!(c.topology.seed, 3);
        assert_eq!(c.seed, 9);
        let s = c.summary();
        assert_eq!(s.strategy, "overlap");
        assert_eq!(s.tasks, 200);
        assert!((s.file_size_mb - 25.0).abs() < 1e-9);
    }

    #[test]
    fn throttle_builders_and_summary() {
        let c = SimConfig::paper(wl(), StrategyKind::StorageAffinity);
        assert!(!c.replica_throttle.is_active());
        assert_eq!(c.summary().replica_throttle, "none");
        let c = c.with_replica_cap(1).with_site_replica_budget(32);
        assert_eq!(c.replica_throttle.replica_cap, Some(1));
        assert_eq!(c.replica_throttle.site_budget, Some(32));
        assert_eq!(c.summary().replica_throttle, "cap=1 site-budget=32");
    }

    #[test]
    fn control_builder_and_summary() {
        let c = SimConfig::paper(wl(), StrategyKind::StorageAffinity);
        assert!(c.control.is_inert());
        assert_eq!(c.summary().control, "none");
        // Explicitly disabling every loop is the same as the default.
        let explicit = c.clone().with_control(ControlConfig::none());
        assert_eq!(explicit.summary(), c.summary());
        let c = c.with_control(ControlConfig::none().with_adaptive_throttle());
        assert_eq!(c.summary().control, "throttle tick=60s");
    }

    #[test]
    fn transfer_guard_builders_and_summary() {
        let c = SimConfig::paper(wl(), StrategyKind::Rest);
        assert!(c.transfer_timeout_mult.is_none());
        // The serde fallback for pre-guard reports matches the inactive
        // summary exactly.
        assert_eq!(c.summary().transfer_guard, default_transfer_guard());
        assert_eq!(c.summary().transfer_guard, "none");
        let c = c
            .with_transfer_timeout(4.0)
            .with_transfer_retries(3)
            .with_retry_backoff(30.0);
        assert_eq!(
            c.summary().transfer_guard,
            "timeout=4.0x retries=3 backoff=30s"
        );
        let naive = c.clone().with_naive_retry();
        assert_eq!(
            naive.summary().transfer_guard,
            "timeout=4.0x retries=3 backoff=30s naive"
        );
    }

    #[test]
    #[should_panic(expected = "transfer timeout multiple must be > 1")]
    fn timeout_mult_at_one_panics() {
        let _ = SimConfig::paper(wl(), StrategyKind::Rest).with_transfer_timeout(1.0);
    }

    #[test]
    #[should_panic(expected = "retry backoff must be positive")]
    fn zero_retry_backoff_panics() {
        let _ = SimConfig::paper(wl(), StrategyKind::Rest).with_retry_backoff(0.0);
    }

    #[test]
    #[should_panic(expected = "topology only has")]
    fn too_many_sites_panics() {
        let _ = SimConfig::paper(wl(), StrategyKind::Rest).with_sites(91);
    }

    #[test]
    fn telemetry_builders() {
        let c = SimConfig::paper(wl(), StrategyKind::Rest);
        assert!(!c.telemetry_requested());
        let c = c
            .with_trace_out("/tmp/trace.json")
            .with_metrics_out("/tmp/metrics.jsonl")
            .with_probe_interval(5.0);
        assert!(c.telemetry_requested());
        assert_eq!(c.trace_out.as_deref(), Some("/tmp/trace.json"));
        assert_eq!(c.metrics_out.as_deref(), Some("/tmp/metrics.jsonl"));
        assert_eq!(c.probe_interval_s, Some(5.0));
        // Deliberately excluded from the summary, like eval_mode: telemetry
        // must never change what reports compare equal to.
        let plain = SimConfig::paper(wl(), StrategyKind::Rest);
        assert_eq!(c.summary(), plain.summary());
    }

    #[test]
    #[should_panic(expected = "probe interval must be positive")]
    fn zero_probe_interval_panics() {
        let _ = SimConfig::paper(wl(), StrategyKind::Rest).with_probe_interval(0.0);
    }

    #[test]
    fn digest_and_exposition_builders_stay_out_of_summary() {
        let c = SimConfig::paper(wl(), StrategyKind::Rest);
        assert!(!c.telemetry_requested());
        let c = c
            .with_digest_out("/tmp/run.digest.jsonl")
            .with_digest_window(600.0)
            .with_serve_metrics("127.0.0.1:9090")
            .with_serve_linger(2.0);
        // The digest alone needs no instruments, but serving does.
        assert!(c.telemetry_requested());
        assert_eq!(c.digest_out.as_deref(), Some("/tmp/run.digest.jsonl"));
        assert_eq!(c.digest_window_s, 600.0);
        assert_eq!(c.serve_metrics.as_deref(), Some("127.0.0.1:9090"));
        assert_eq!(c.serve_linger_s, 2.0);
        let plain = SimConfig::paper(wl(), StrategyKind::Rest);
        assert_eq!(c.summary(), plain.summary());
        let digest_only = SimConfig::paper(wl(), StrategyKind::Rest).with_digest_out("/tmp/d");
        assert!(!digest_only.telemetry_requested());
    }

    #[test]
    fn seed_suffix_helper_applies_to_every_output() {
        assert_eq!(seeded_output_path("runs/t.json", 3), "runs/t.json.seed3");
        let mut c = SimConfig::paper(wl(), StrategyKind::Rest)
            .with_trace_out("t.json")
            .with_metrics_out("m.jsonl")
            .with_digest_out("d.jsonl");
        c.suffix_outputs_for_seed(4);
        assert_eq!(c.trace_out.as_deref(), Some("t.json.seed4"));
        assert_eq!(c.metrics_out.as_deref(), Some("m.jsonl.seed4"));
        assert_eq!(c.digest_out.as_deref(), Some("d.jsonl.seed4"));
    }

    #[test]
    #[should_panic(expected = "digest window must be positive")]
    fn zero_digest_window_panics() {
        let _ = SimConfig::paper(wl(), StrategyKind::Rest).with_digest_window(0.0);
    }
}
