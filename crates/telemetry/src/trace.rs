//! Span recording and Chrome Trace Event Format export.
//!
//! Spans live on *tracks*: one track per worker (task lifecycle phases and
//! down-time) and one per data server (outage windows). Within a track,
//! spans are emitted strictly sequentially by the engine, so the Chrome
//! `B`/`E` duration-event pairing is trivially well-formed — a property
//! `tests/simulation_invariants.rs` asserts for whole simulations.

use std::cell::RefCell;
use std::fmt::Write as _;

/// Chrome-trace process id of worker tracks (lifecycle + down spans).
pub(crate) const PID_WORKERS: u32 = 1;
/// Chrome-trace process id of data-server tracks (outage spans).
pub(crate) const PID_SERVERS: u32 = 2;
/// Chrome-trace process id of the probe counter series.
pub(crate) const PID_PROBES: u32 = 3;

/// A span track: one sequential timeline in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Track {
    /// Chrome-trace process id (groups tracks in the viewer).
    pub pid: u32,
    /// Chrome-trace thread id (one per entity).
    pub tid: u32,
}

impl Track {
    /// The track of flat-indexed worker `w`.
    #[must_use]
    pub fn worker(w: usize) -> Self {
        Track {
            pid: PID_WORKERS,
            tid: w as u32,
        }
    }

    /// The track of site `s`'s data server.
    #[must_use]
    pub fn server(s: usize) -> Self {
        Track {
            pid: PID_SERVERS,
            tid: s as u32,
        }
    }
}

/// Chrome trace event phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// Duration begin (`"B"`).
    Begin,
    /// Duration end (`"E"`).
    End,
    /// Instantaneous event (`"i"`).
    Instant,
}

impl SpanPhase {
    fn chrome(self) -> &'static str {
        match self {
            SpanPhase::Begin => "B",
            SpanPhase::End => "E",
            SpanPhase::Instant => "i",
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The track the event belongs to.
    pub track: Track,
    /// Event name (a lifecycle phase, `"down"`, `"outage"`, …).
    pub name: &'static str,
    /// Phase marker.
    pub phase: SpanPhase,
    /// Simulation timestamp, seconds.
    pub ts_s: f64,
    /// Task id for lifecycle spans (`None` on fault/outage spans), emitted
    /// as `"args":{"task":N}` so the forensics analyzer can group spans by
    /// task.
    pub task: Option<u64>,
}

impl TraceEvent {
    /// Appends this event as one Chrome-trace JSON object (no trailing
    /// separator). Timestamps are microseconds, as the format requires.
    pub fn write_chrome_json(&self, out: &mut String) {
        let ts_us = (self.ts_s * 1e6).round() as u64;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"sim\",\"ph\":\"{}\",\"ts\":{ts_us},\
             \"pid\":{},\"tid\":{}",
            self.name,
            self.phase.chrome(),
            self.track.pid,
            self.track.tid,
        );
        if self.phase == SpanPhase::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        if let Some(task) = self.task {
            let _ = write!(out, ",\"args\":{{\"task\":{task}}}");
        }
        out.push('}');
    }
}

/// The span recorder backing a [`crate::Telemetry`].
#[derive(Debug, Default)]
pub(crate) struct Tracer {
    events: RefCell<Vec<TraceEvent>>,
}

impl Tracer {
    pub(crate) fn begin(&self, track: Track, name: &'static str, ts_s: f64, task: Option<u64>) {
        self.events.borrow_mut().push(TraceEvent {
            track,
            name,
            phase: SpanPhase::Begin,
            ts_s,
            task,
        });
    }

    pub(crate) fn end(&self, track: Track, name: &'static str, ts_s: f64) {
        self.events.borrow_mut().push(TraceEvent {
            track,
            name,
            phase: SpanPhase::End,
            ts_s,
            task: None,
        });
    }

    pub(crate) fn instant(&self, track: Track, name: &'static str, ts_s: f64, task: Option<u64>) {
        self.events.borrow_mut().push(TraceEvent {
            track,
            name,
            phase: SpanPhase::Instant,
            ts_s,
            task,
        });
    }

    pub(crate) fn events(&self) -> Vec<TraceEvent> {
        self.events.borrow().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_json_microsecond_timestamps() {
        let e = TraceEvent {
            track: Track::worker(4),
            name: "compute",
            phase: SpanPhase::Begin,
            ts_s: 1.5,
            task: None,
        };
        let mut s = String::new();
        e.write_chrome_json(&mut s);
        assert_eq!(
            s,
            "{\"name\":\"compute\",\"cat\":\"sim\",\"ph\":\"B\",\"ts\":1500000,\
             \"pid\":1,\"tid\":4}"
        );
    }

    #[test]
    fn instant_events_carry_scope() {
        let e = TraceEvent {
            track: Track::server(2),
            name: "complete",
            phase: SpanPhase::Instant,
            ts_s: 0.0,
            task: None,
        };
        let mut s = String::new();
        e.write_chrome_json(&mut s);
        assert!(s.contains("\"s\":\"t\""));
        assert!(s.contains("\"pid\":2"));
    }

    #[test]
    fn task_ids_emit_as_args() {
        let e = TraceEvent {
            track: Track::worker(0),
            name: "queued",
            phase: SpanPhase::Begin,
            ts_s: 2.0,
            task: Some(17),
        };
        let mut s = String::new();
        e.write_chrome_json(&mut s);
        assert!(s.ends_with(",\"args\":{\"task\":17}}"), "{s}");
    }
}
