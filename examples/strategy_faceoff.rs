//! Strategy face-off: the paper's §5.4 experiment in miniature.
//!
//! Runs all six algorithms of §5.3 (plus the classic workqueue control) on
//! one Coadd workload, averaged over several topologies, and prints a
//! ranking like the paper's Figure 4 at the default capacity.
//!
//! ```sh
//! cargo run --release --example strategy_faceoff
//! ```

use std::sync::Arc;

use gridsched::prelude::*;

fn main() {
    let mut coadd = CoaddConfig::paper_6000();
    coadd.tasks = 1500; // keep the example under ~10 s
    let workload = Arc::new(coadd.generate());
    let seeds = [0u64, 1, 2];

    let mut rows: Vec<(String, MetricsReport)> = Vec::new();
    let strategies = [
        StrategyKind::StorageAffinity,
        StrategyKind::Overlap,
        StrategyKind::Rest,
        StrategyKind::Combined,
        StrategyKind::Rest2,
        StrategyKind::Combined2,
        StrategyKind::Workqueue,
    ];
    for strategy in strategies {
        let config = SimConfig::paper(workload.clone(), strategy);
        let report = run_averaged(&config, &seeds);
        rows.push((strategy.to_string(), report));
    }
    rows.sort_by(|a, b| {
        a.1.makespan_minutes
            .partial_cmp(&b.1.makespan_minutes)
            .expect("finite makespans")
    });

    println!(
        "{:<18} {:>12} {:>12} {:>10} {:>10}",
        "algorithm", "makespan_min", "transfers", "bytes_GB", "replicas"
    );
    for (name, r) in &rows {
        println!(
            "{:<18} {:>12.0} {:>12} {:>10.1} {:>10}",
            name,
            r.makespan_minutes,
            r.file_transfers,
            r.bytes_transferred / 1e9,
            r.replicas_launched
        );
    }
    println!();
    println!(
        "winner: {} — the paper's §7 conclusion: metrics considering the number of\n\
         file transfers (rest/combined) beat the pure overlap metric, and worker-\n\
         centric scheduling beats the task-centric storage-affinity baseline.",
        rows[0].0
    );
}
