//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses (see `vendor/README.md` for why these stubs exist).
//!
//! Provides [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool`. The generator is deterministic and
//! statistically solid for simulation purposes, but it is **not** the
//! upstream `StdRng` (ChaCha12): identical seeds produce different
//! sequences than real `rand`. All gridsched results are self-consistent
//! under this generator; none are tied to upstream `rand` output.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Extension methods over any [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand`'s
    /// `StdRng`; see the crate docs for the compatibility caveat).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(z: &mut u64) -> u64 {
        *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = *z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut z = seed;
            StdRng {
                s: [
                    splitmix64(&mut z),
                    splitmix64(&mut z),
                    splitmix64(&mut z),
                    splitmix64(&mut z),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xa: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let xc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: u32 = r.gen_range(5..10);
            assert!((5..10).contains(&x));
            let y: u32 = r.gen_range(5..=10);
            assert!((5..=10).contains(&y));
            let f: f64 = r.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = StdRng::seed_from_u64(4);
        let xs: Vec<f64> = (0..4000).map(|_| r.gen()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean} far from 0.5");
        assert!(xs.iter().any(|&x| x < 0.05) && xs.iter().any(|&x| x > 0.95));
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut r = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let hits = (0..4000).filter(|_| r.gen_bool(0.25)).count();
        assert!((800..1200).contains(&hits), "p=0.25 gave {hits}/4000");
    }
}
